// End-to-end pipeline tests: train a small acoustic model once, then verify
// the two-stage RCA (IMU KS-stage + GPS KF-stage) on attacked and benign
// flights.  Uses the fast MLP model and short flights to stay test-sized;
// the bench harnesses exercise the full-size configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "attacks/sound_attack.hpp"
#include "core/gps_rca.hpp"
#include "core/imu_rca.hpp"
#include "core/rca_engine.hpp"
#include "core/sensory_mapper.hpp"
#include "test_helpers.hpp"

namespace sb::core {
namespace {

struct Pipeline {
  std::unique_ptr<SensoryMapper> mapper;
  std::unique_ptr<ImuRcaDetector> imu_det;
  std::unique_ptr<GpsRcaDetector> gps_det;
  std::vector<Flight> benign;
};

const Pipeline& pipeline() {
  static const Pipeline p = [] {
    Pipeline out;
    // Train on 12 short flights with the fast MLP.
    auto scenarios = test::lab().training_scenarios(2, 18.0);
    std::vector<Flight> train;
    for (const auto& s : scenarios) train.push_back(test::lab().fly(s));

    SensoryMapperConfig cfg;
    cfg.model = ml::ModelKind::kMlp;
    cfg.dataset.stride = 0.25;
    cfg.train.epochs = 8;
    cfg.train.lr = 1e-3;
    out.mapper = std::make_unique<SensoryMapper>(cfg);
    out.mapper->fit(test::lab(), train);

    // Held-out benign flights for calibration.
    for (std::uint64_t s = 300; s < 306; ++s)
      out.benign.push_back(test::hover_flight(25.0, s, 0.4));
    out.benign.push_back(test::line_flight(25.0, 306));
    out.benign.push_back(test::line_flight(25.0, 307));

    out.imu_det = std::make_unique<ImuRcaDetector>(ImuRcaConfig{});
    std::vector<WindowResiduals> cal;
    for (const auto& f : out.benign) {
      const auto preds = out.mapper->predict_flight(test::lab(), f);
      const auto w = ImuRcaDetector::residuals(f, preds);
      cal.insert(cal.end(), w.begin(), w.end());
    }
    out.imu_det->calibrate(cal);

    out.gps_det = std::make_unique<GpsRcaDetector>(GpsRcaConfig{});
    std::vector<GpsRcaDetector::Result> audio_results, fused_results;
    for (const auto& f : out.benign) {
      const auto preds = out.mapper->predict_flight(test::lab(), f);
      audio_results.push_back(
          out.gps_det->analyze(f, preds, GpsDetectorMode::kAudioOnly));
      fused_results.push_back(
          out.gps_det->analyze(f, preds, GpsDetectorMode::kAudioImu));
    }
    out.gps_det->calibrate(audio_results, GpsDetectorMode::kAudioOnly);
    out.gps_det->calibrate(fused_results, GpsDetectorMode::kAudioImu);
    return out;
  }();
  return p;
}

Flight imu_attack_flight(attacks::ImuAttackType type, std::uint64_t seed) {
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 25.0);
  s.wind.gust_stddev = 0.4;
  attacks::ImuAttackConfig a;
  a.type = type;
  a.start = 10.0;
  a.end = 20.0;
  s.imu_attack = a;
  s.seed = seed;
  return test::lab().fly(s);
}

Flight gps_attack_flight(std::uint64_t seed, double drag_rate = 1.2) {
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 35.0);
  s.wind.gust_stddev = 0.4;
  attacks::GpsSpoofConfig g;
  g.start = 10.0;
  g.end = 30.0;
  g.drag_rate = drag_rate;
  s.gps_spoof = g;
  s.seed = seed;
  return test::lab().fly(s);
}

TEST(Integration, ModelPredictsFiniteAccelerations) {
  const auto& p = pipeline();
  const auto preds = p.mapper->predict_flight(test::lab(), p.benign.front());
  ASSERT_FALSE(preds.empty());
  for (const auto& pr : preds) {
    EXPECT_TRUE(std::isfinite(pr.accel.norm()));
    EXPECT_TRUE(std::isfinite(pr.vel.norm()));
    EXPECT_LT(pr.accel.norm(), 30.0);
  }
}

TEST(Integration, ModelBeatsZeroPredictorOnVerticalAxis) {
  const auto& p = pipeline();
  const auto& f = p.benign.back();  // line mission: real dynamics
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  double model_se = 0, zero_se = 0;
  for (const auto& pr : preds) {
    const Vec3 label = f.log.mean_imu_accel(pr.t0, pr.t1);
    model_se += (pr.accel.z - label.z) * (pr.accel.z - label.z);
    zero_se += label.z * label.z;
  }
  EXPECT_LT(model_se, zero_se);
}

TEST(Integration, BenignResidualsApproximatelyZeroMean) {
  const auto& p = pipeline();
  for (int axis = 0; axis < 3; ++axis) {
    const auto& fit = p.imu_det->benign_fit(axis);
    EXPECT_LT(std::abs(fit.mean), 0.35) << "axis " << axis;
    EXPECT_GT(fit.stddev, 0.0);
  }
}

TEST(Integration, ImuStageDetectsAccelDos) {
  const auto& p = pipeline();
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 400);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.imu_det->analyze(ImuRcaDetector::residuals(f, preds));
  EXPECT_TRUE(r.attacked);
  EXPECT_GE(r.detect_time, 10.0);
  EXPECT_LE(r.detect_time, 20.0);
}

TEST(Integration, ImuStageDetectsSideSwing) {
  const auto& p = pipeline();
  const auto f = imu_attack_flight(attacks::ImuAttackType::kSideSwing, 401);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.imu_det->analyze(ImuRcaDetector::residuals(f, preds));
  EXPECT_TRUE(r.attacked);
}

TEST(Integration, ImuStageQuietOnFreshBenignFlight) {
  const auto& p = pipeline();
  const auto f = test::hover_flight(25.0, 402, 0.4);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.imu_det->analyze(ImuRcaDetector::residuals(f, preds));
  EXPECT_FALSE(r.attacked);
}

TEST(Integration, GpsStageDetectsDragSpoofFused) {
  const auto& p = pipeline();
  const auto f = gps_attack_flight(403);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.gps_det->analyze(f, preds, GpsDetectorMode::kAudioImu);
  EXPECT_TRUE(r.attacked);
  EXPECT_GE(r.detect_time, 10.0);
}

TEST(Integration, GpsStageDetectsDragSpoofAudioOnly) {
  const auto& p = pipeline();
  const auto f = gps_attack_flight(404);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.gps_det->analyze(f, preds, GpsDetectorMode::kAudioOnly);
  EXPECT_TRUE(r.attacked);
}

TEST(Integration, GpsStageQuietOnFreshBenignFlight) {
  const auto& p = pipeline();
  const auto f = test::hover_flight(30.0, 405, 0.4);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.gps_det->analyze(f, preds, GpsDetectorMode::kAudioImu);
  EXPECT_FALSE(r.attacked);
}

TEST(Integration, RcaEngineAttributesImuAttack) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 406);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_TRUE(report.imu_attacked);
  // With the IMU flagged, the GPS stage must fall back to audio-only.
  EXPECT_EQ(report.gps_mode_used, GpsDetectorMode::kAudioOnly);
}

TEST(Integration, RcaEngineAttributesGpsAttack) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = gps_attack_flight(407);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_TRUE(report.gps_attacked);
  EXPECT_TRUE(report.any_attack());
}

TEST(Integration, RcaEngineQuietOnBenign) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = test::hover_flight(25.0, 408, 0.4);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_FALSE(report.imu_attacked);
  EXPECT_FALSE(report.gps_attacked);
  EXPECT_FALSE(report.any_attack());
}

TEST(Integration, SaveLoadRoundTripPreservesPredictions) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model.bin";
  ASSERT_TRUE(p.mapper->save(path));

  core::SensoryMapper loaded{p.mapper->config()};
  ASSERT_TRUE(loaded.load(path));

  const auto& f = p.benign.front();
  const auto a = p.mapper->predict_flight(test::lab(), f);
  const auto b = loaded.predict_flight(test::lab(), f);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].accel.x, b[i].accel.x, 1e-9);
    EXPECT_NEAR(a[i].accel.z, b[i].accel.z, 1e-9);
    EXPECT_NEAR(a[i].vel.y, b[i].vel.y, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(Integration, LoadRejectsWrongModelKind) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model2.bin";
  ASSERT_TRUE(p.mapper->save(path));
  core::SensoryMapperConfig other = p.mapper->config();
  other.model = ml::ModelKind::kMobileNetLite;  // pipeline uses kMlp
  core::SensoryMapper mismatched{other};
  EXPECT_FALSE(mismatched.load(path));
  EXPECT_FALSE(mismatched.trained());
  std::remove(path.c_str());
}

TEST(Integration, PredictWindowsMatchesPredictFlight) {
  const auto& p = pipeline();
  const auto& f = p.benign.front();
  const auto windows = p.mapper->synthesize_windows(test::lab(), f);
  const auto a = p.mapper->predict_windows(windows);
  const auto b = p.mapper->predict_flight(test::lab(), f);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].accel.x, b[i].accel.x);
    EXPECT_DOUBLE_EQ(a[i].vel.z, b[i].vel.z);
  }
}

TEST(Integration, SoundCancellationShiftsPredictions) {
  const auto& p = pipeline();
  const auto& f = p.benign.front();
  const auto windows = p.mapper->synthesize_windows(test::lab(), f);
  PredictionHooks hooks;
  hooks.audio_transform = [](acoustics::MultiChannelAudio& audio) {
    attacks::PhaseSyncSoundAttackConfig cfg;
    cfg.amplitude_factor = 0.0;
    cfg.channels = {0, 1, 2, 3};
    attacks::apply_phase_sync_attack(audio, cfg);
  };
  const auto clean = p.mapper->predict_windows(windows);
  const auto attacked = p.mapper->predict_windows(windows, hooks);
  double diff = 0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    diff += (clean[i].accel - attacked[i].accel).norm();
  EXPECT_GT(diff / static_cast<double>(clean.size()), 0.01);
}

TEST(Integration, FrequencyGroupRemovalDegradesAccuracy) {
  const auto& p = pipeline();
  const auto& f = p.benign.back();
  PredictionHooks hooks;
  hooks.signature_transform = [&](ml::Tensor& sig) {
    remove_frequency_group(sig, dsp::FreqGroup::kAerodynamic,
                           p.mapper->config().dataset.signature);
  };
  const double clean_mse = p.mapper->test_mse(test::lab(), std::span{&f, 1});
  const double ablated_mse = p.mapper->test_mse(test::lab(), std::span{&f, 1}, hooks);
  EXPECT_GT(ablated_mse, clean_mse);
}

}  // namespace
}  // namespace sb::core
