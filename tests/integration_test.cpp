// End-to-end pipeline tests: train a small acoustic model once, then verify
// the two-stage RCA (IMU KS-stage + GPS KF-stage) on attacked and benign
// flights.  Uses the fast MLP model and short flights to stay test-sized;
// the bench harnesses exercise the full-size configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "attacks/sound_attack.hpp"
#include "faults/fault_injector.hpp"
#include "core/gps_rca.hpp"
#include "core/imu_rca.hpp"
#include "core/rca_engine.hpp"
#include "core/sensory_mapper.hpp"
#include "obs/metrics.hpp"
#include "stream/inference_scheduler.hpp"
#include "stream/rca_session.hpp"
#include "stream/streaming_extractor.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace sb::core {
namespace {

struct Pipeline {
  std::unique_ptr<SensoryMapper> mapper;
  std::unique_ptr<ImuRcaDetector> imu_det;
  std::unique_ptr<GpsRcaDetector> gps_det;
  std::vector<Flight> benign;
};

const Pipeline& pipeline() {
  static const Pipeline p = [] {
    Pipeline out;
    // Train on 12 short flights with the fast MLP.
    auto scenarios = test::lab().training_scenarios(2, 18.0);
    std::vector<Flight> train;
    for (const auto& s : scenarios) train.push_back(test::lab().fly(s));

    SensoryMapperConfig cfg;
    cfg.model = ml::ModelKind::kMlp;
    cfg.dataset.stride = 0.25;
    cfg.train.epochs = 8;
    cfg.train.lr = 1e-3;
    out.mapper = std::make_unique<SensoryMapper>(cfg);
    out.mapper->fit(test::lab(), train);

    // Held-out benign flights for calibration.
    for (std::uint64_t s = 300; s < 306; ++s)
      out.benign.push_back(test::hover_flight(25.0, s, 0.4));
    out.benign.push_back(test::line_flight(25.0, 306));
    out.benign.push_back(test::line_flight(25.0, 307));

    out.imu_det = std::make_unique<ImuRcaDetector>(ImuRcaConfig{});
    std::vector<WindowResiduals> cal;
    for (const auto& f : out.benign) {
      const auto preds = out.mapper->predict_flight(test::lab(), f);
      const auto w = ImuRcaDetector::residuals(f, preds);
      cal.insert(cal.end(), w.begin(), w.end());
    }
    out.imu_det->calibrate(cal);

    out.gps_det = std::make_unique<GpsRcaDetector>(GpsRcaConfig{});
    std::vector<GpsRcaDetector::Result> audio_results, fused_results;
    for (const auto& f : out.benign) {
      const auto preds = out.mapper->predict_flight(test::lab(), f);
      audio_results.push_back(
          out.gps_det->analyze(f, preds, GpsDetectorMode::kAudioOnly));
      fused_results.push_back(
          out.gps_det->analyze(f, preds, GpsDetectorMode::kAudioImu));
    }
    out.gps_det->calibrate(audio_results, GpsDetectorMode::kAudioOnly);
    out.gps_det->calibrate(fused_results, GpsDetectorMode::kAudioImu);
    return out;
  }();
  return p;
}

Flight imu_attack_flight(attacks::ImuAttackType type, std::uint64_t seed) {
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 25.0);
  s.wind.gust_stddev = 0.4;
  attacks::ImuAttackConfig a;
  a.type = type;
  a.start = 10.0;
  a.end = 20.0;
  s.imu_attack = a;
  s.seed = seed;
  return test::lab().fly(s);
}

Flight gps_attack_flight(std::uint64_t seed, double drag_rate = 1.2) {
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 35.0);
  s.wind.gust_stddev = 0.4;
  attacks::GpsSpoofConfig g;
  g.start = 10.0;
  g.end = 30.0;
  g.drag_rate = drag_rate;
  s.gps_spoof = g;
  s.seed = seed;
  return test::lab().fly(s);
}

TEST(Integration, ModelPredictsFiniteAccelerations) {
  const auto& p = pipeline();
  const auto preds = p.mapper->predict_flight(test::lab(), p.benign.front());
  ASSERT_FALSE(preds.empty());
  for (const auto& pr : preds) {
    EXPECT_TRUE(std::isfinite(pr.accel.norm()));
    EXPECT_TRUE(std::isfinite(pr.vel.norm()));
    EXPECT_LT(pr.accel.norm(), 30.0);
  }
}

TEST(Integration, ModelBeatsZeroPredictorOnVerticalAxis) {
  const auto& p = pipeline();
  const auto& f = p.benign.back();  // line mission: real dynamics
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  double model_se = 0, zero_se = 0;
  for (const auto& pr : preds) {
    const Vec3 label = f.log.mean_imu_accel(pr.t0, pr.t1);
    model_se += (pr.accel.z - label.z) * (pr.accel.z - label.z);
    zero_se += label.z * label.z;
  }
  EXPECT_LT(model_se, zero_se);
}

TEST(Integration, BenignResidualsApproximatelyZeroMean) {
  const auto& p = pipeline();
  for (int axis = 0; axis < 3; ++axis) {
    const auto& fit = p.imu_det->benign_fit(axis);
    EXPECT_LT(std::abs(fit.mean), 0.35) << "axis " << axis;
    EXPECT_GT(fit.stddev, 0.0);
  }
}

TEST(Integration, ImuStageDetectsAccelDos) {
  const auto& p = pipeline();
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 400);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.imu_det->analyze(ImuRcaDetector::residuals(f, preds));
  EXPECT_TRUE(r.attacked);
  EXPECT_GE(r.detect_time, 10.0);
  EXPECT_LE(r.detect_time, 20.0);
}

TEST(Integration, ImuStageDetectsSideSwing) {
  const auto& p = pipeline();
  const auto f = imu_attack_flight(attacks::ImuAttackType::kSideSwing, 401);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.imu_det->analyze(ImuRcaDetector::residuals(f, preds));
  EXPECT_TRUE(r.attacked);
}

TEST(Integration, ImuStageQuietOnFreshBenignFlight) {
  const auto& p = pipeline();
  const auto f = test::hover_flight(25.0, 402, 0.4);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.imu_det->analyze(ImuRcaDetector::residuals(f, preds));
  EXPECT_FALSE(r.attacked);
}

TEST(Integration, GpsStageDetectsDragSpoofFused) {
  const auto& p = pipeline();
  const auto f = gps_attack_flight(403);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.gps_det->analyze(f, preds, GpsDetectorMode::kAudioImu);
  EXPECT_TRUE(r.attacked);
  EXPECT_GE(r.detect_time, 10.0);
}

TEST(Integration, GpsStageDetectsDragSpoofAudioOnly) {
  const auto& p = pipeline();
  const auto f = gps_attack_flight(404);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.gps_det->analyze(f, preds, GpsDetectorMode::kAudioOnly);
  EXPECT_TRUE(r.attacked);
}

TEST(Integration, GpsStageQuietOnFreshBenignFlight) {
  const auto& p = pipeline();
  const auto f = test::hover_flight(30.0, 405, 0.4);
  const auto preds = p.mapper->predict_flight(test::lab(), f);
  const auto r = p.gps_det->analyze(f, preds, GpsDetectorMode::kAudioImu);
  EXPECT_FALSE(r.attacked);
}

TEST(Integration, RcaEngineAttributesImuAttack) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 406);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_TRUE(report.imu_attacked);
  // With the IMU flagged, the GPS stage must fall back to audio-only.
  EXPECT_EQ(report.gps_mode_used, GpsDetectorMode::kAudioOnly);
}

TEST(Integration, RcaEngineAttributesGpsAttack) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = gps_attack_flight(407);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_TRUE(report.gps_attacked);
  EXPECT_TRUE(report.any_attack());
}

TEST(Integration, RcaEngineQuietOnBenign) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = test::hover_flight(25.0, 408, 0.4);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_FALSE(report.imu_attacked);
  EXPECT_FALSE(report.gps_attacked);
  EXPECT_FALSE(report.any_attack());
}

TEST(Integration, SaveLoadRoundTripPreservesPredictions) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model.bin";
  ASSERT_TRUE(p.mapper->save(path));

  core::SensoryMapper loaded{p.mapper->config()};
  ASSERT_TRUE(loaded.load(path));

  const auto& f = p.benign.front();
  const auto a = p.mapper->predict_flight(test::lab(), f);
  const auto b = loaded.predict_flight(test::lab(), f);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].accel.x, b[i].accel.x, 1e-9);
    EXPECT_NEAR(a[i].accel.z, b[i].accel.z, 1e-9);
    EXPECT_NEAR(a[i].vel.y, b[i].vel.y, 1e-9);
  }
  std::remove(path.c_str());
}

// Guard that restores the process serving precision (tests share one
// process; leaking a precision override would change later tests' paths).
struct PlanPrecisionGuard {
  explicit PlanPrecisionGuard(ml::PlanPrecision p)
      : prev_(ml::plan_precision()) {
    ml::set_plan_precision(p);
  }
  ~PlanPrecisionGuard() { ml::set_plan_precision(prev_); }
  ml::PlanPrecision prev_;
};

// The compiled plan packs frozen weights, so load() must invalidate it and
// serving must rebuild from the LOADED weights: save -> load -> serve via
// the exact plan has to match the original mapper's raw-graph predictions
// bitwise (the exact plan is pinned bitwise-equal to the graph by
// PlanEquivalence in ml_test; this pins the rebuild-after-load plumbing).
TEST(Integration, SaveLoadRebuildsInferencePlan) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_plan_model.bin";
  ASSERT_TRUE(p.mapper->save(path));
  core::SensoryMapper loaded{p.mapper->config()};
  ASSERT_TRUE(loaded.load(path));

  const auto& f = p.benign.front();
  std::vector<TimedPrediction> graph, planned;
  {
    PlanPrecisionGuard off{ml::PlanPrecision::kOff};
    graph = p.mapper->predict_flight(test::lab(), f);
  }
  {
    PlanPrecisionGuard exact{ml::PlanPrecision::kF64};
    loaded.warm_serving();
    ASSERT_NE(loaded.serving_plan(), nullptr);
    EXPECT_EQ(loaded.serving_plan()->precision(), ml::PlanPrecision::kF64);
    planned = loaded.predict_flight(test::lab(), f);
  }
  ASSERT_EQ(graph.size(), planned.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_EQ(graph[i].accel.x, planned[i].accel.x) << i;
    EXPECT_EQ(graph[i].accel.y, planned[i].accel.y) << i;
    EXPECT_EQ(graph[i].accel.z, planned[i].accel.z) << i;
    EXPECT_EQ(graph[i].vel.x, planned[i].vel.x) << i;
    EXPECT_EQ(graph[i].vel.y, planned[i].vel.y) << i;
    EXPECT_EQ(graph[i].vel.z, planned[i].vel.z) << i;
  }
  std::remove(path.c_str());
}

// The opt-in float32 plan folds BatchNorm into the weights (one rounding
// per weight), so its predictions drift — but verdicts must agree with the
// reference path on every fixture flight, and the drift must stay orders
// of magnitude under the detector thresholds.
TEST(Integration, F32PlanKeepsVerdictsAndBoundsDrift) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const std::vector<Flight> flights = {
      imu_attack_flight(attacks::ImuAttackType::kAccelDos, 606),
      gps_attack_flight(607),
      test::hover_flight(25.0, 608, 0.4),
  };
  for (const auto& f : flights) {
    RcaReport ref, fast;
    {
      PlanPrecisionGuard off{ml::PlanPrecision::kOff};
      ref = engine.analyze(test::lab(), f);
    }
    {
      PlanPrecisionGuard folded{ml::PlanPrecision::kF32};
      fast = engine.analyze(test::lab(), f);
    }
    EXPECT_EQ(ref.imu_attacked, fast.imu_attacked);
    EXPECT_EQ(ref.gps_attacked, fast.gps_attacked);
    EXPECT_EQ(ref.gps_mode_used, fast.gps_mode_used);
  }

  // Component-wise prediction drift on a benign flight.
  std::vector<TimedPrediction> ref, fast;
  {
    PlanPrecisionGuard off{ml::PlanPrecision::kOff};
    ref = p.mapper->predict_flight(test::lab(), flights.back());
  }
  {
    PlanPrecisionGuard folded{ml::PlanPrecision::kF32};
    fast = p.mapper->predict_flight(test::lab(), flights.back());
  }
  ASSERT_EQ(ref.size(), fast.size());
  ASSERT_FALSE(ref.empty());
  double mse = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double d[6] = {fast[i].accel.x - ref[i].accel.x,
                         fast[i].accel.y - ref[i].accel.y,
                         fast[i].accel.z - ref[i].accel.z,
                         fast[i].vel.x - ref[i].vel.x,
                         fast[i].vel.y - ref[i].vel.y,
                         fast[i].vel.z - ref[i].vel.z};
    for (double v : d) {
      EXPECT_TRUE(std::isfinite(v));
      mse += v * v;
      ++n;
    }
  }
  // The f32 path rounds both the STFT front end and the folded weights at
  // float level; prediction drift stays orders of magnitude below the
  // detector thresholds (measured MSE ~1e-12 on the bench workload).  A
  // violation means the f32 math is wrong, not that float noise grew.
  EXPECT_LT(mse / static_cast<double>(n), 1e-6);
}

TEST(Integration, LoadRejectsWrongModelKind) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model2.bin";
  ASSERT_TRUE(p.mapper->save(path));
  core::SensoryMapperConfig other = p.mapper->config();
  other.model = ml::ModelKind::kMobileNetLite;  // pipeline uses kMlp
  core::SensoryMapper mismatched{other};
  EXPECT_FALSE(mismatched.load(path));
  EXPECT_FALSE(mismatched.trained());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Model-file integrity frame: truncation, bit flips and pre-framing files
// must be rejected cleanly, leaving the mapper untrained.

std::string slurp(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{is}, {}};
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream os{path, std::ios::binary};
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Integration, LoadRejectsTruncatedModelFile) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model_trunc.bin";
  ASSERT_TRUE(p.mapper->save(path));
  const auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 100u);
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{10}}) {
    spew(path, bytes.substr(0, keep));
    core::SensoryMapper loaded{p.mapper->config()};
    EXPECT_FALSE(loaded.load(path)) << "accepted a file cut to " << keep << " bytes";
    EXPECT_FALSE(loaded.trained());
  }
  std::remove(path.c_str());
}

TEST(Integration, LoadRejectsBitFlippedModelFile) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model_flip.bin";
  ASSERT_TRUE(p.mapper->save(path));
  auto bytes = slurp(path);
  // Flip one bit in the middle of the weight payload: without the CRC this
  // would load fine and silently change eval behavior.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  spew(path, bytes);
  core::SensoryMapper loaded{p.mapper->config()};
  EXPECT_FALSE(loaded.load(path));
  EXPECT_FALSE(loaded.trained());
  std::remove(path.c_str());
}

TEST(Integration, LoadRejectsPreFramingFormat) {
  const auto& p = pipeline();
  const std::string path = "/tmp/soundboost_test_model_legacy.bin";
  ASSERT_TRUE(p.mapper->save(path));
  auto bytes = slurp(path);
  // Rewrite the magic to the legacy value: a file saved before the integrity
  // frame existed must be recognized and rejected, not misparsed.
  const std::uint64_t legacy = 0x53424d4150313032ULL;  // "SBMAP102"
  std::memcpy(bytes.data(), &legacy, sizeof(legacy));
  spew(path, bytes);
  core::SensoryMapper loaded{p.mapper->config()};
  EXPECT_FALSE(loaded.load(path));
  EXPECT_FALSE(loaded.trained());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Graceful degradation through the full engine.

TEST(Integration, DeadMicFlightStillCompletesRcaWithHealthReport) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = test::hover_flight(25.0, 410, 0.4);
  PredictionHooks hooks;
  hooks.audio_transform = [](acoustics::MultiChannelAudio& audio) {
    for (auto& v : audio.channels[1]) v = 0.0;  // mic 1 recorded nothing
  };
  RcaDecisionTrace trace;
  const auto report = engine.analyze(test::lab(), f, hooks, &trace);
  EXPECT_FALSE(report.health.mic_alive(1));
  EXPECT_EQ(report.health.mics_alive(), sensors::kNumMics - 1);
  EXPECT_GT(report.health.windows_degraded, 0u);
  EXPECT_TRUE(report.health.degraded());
  EXPECT_EQ(trace.health.mics_alive(), sensors::kNumMics - 1);
  // The analysis still completes and the masked front-end stays quiet on a
  // benign flight.
  EXPECT_FALSE(report.gps_attacked);
}

TEST(Integration, GpsOutageCoastsWithoutFalseAlert) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  auto f = test::hover_flight(25.0, 411, 0.4);
  faults::FaultPlan plan;
  plan.gps.push_back({faults::GpsFaultType::kOutage, 1.0, 10.0, 15.0});
  faults::apply_to_log(f.log, plan);

  RcaDecisionTrace trace;
  const auto report = engine.analyze(test::lab(), f, {}, &trace);
  EXPECT_GE(report.health.gps_coast_intervals, 1u);
  EXPECT_GT(report.health.gps_coast_seconds, 3.0);
  EXPECT_FALSE(report.imu_attacked);
  EXPECT_FALSE(report.gps_attacked);  // the coast must not be scored as a spoof
  bool any_reset = false;
  for (const auto& d : trace.gps) any_reset = any_reset || d.coast_reset;
  EXPECT_TRUE(any_reset);
}

TEST(Integration, EngineHealthCleanOnPristineFlight) {
  const auto& p = pipeline();
  RcaEngine engine{*p.mapper, *p.imu_det, *p.gps_det};
  const auto f = test::hover_flight(25.0, 412, 0.4);
  const auto report = engine.analyze(test::lab(), f);
  EXPECT_FALSE(report.health.degraded());
  EXPECT_EQ(report.health.mics_alive(), sensors::kNumMics);
  EXPECT_GT(report.health.windows_total, 0u);
  EXPECT_EQ(report.health.windows_degraded, 0u);
}

TEST(Integration, PredictWindowsMatchesPredictFlight) {
  const auto& p = pipeline();
  const auto& f = p.benign.front();
  const auto windows = p.mapper->synthesize_windows(test::lab(), f);
  const auto a = p.mapper->predict_windows(windows);
  const auto b = p.mapper->predict_flight(test::lab(), f);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].accel.x, b[i].accel.x);
    EXPECT_DOUBLE_EQ(a[i].vel.z, b[i].vel.z);
  }
}

TEST(Integration, SoundCancellationShiftsPredictions) {
  const auto& p = pipeline();
  const auto& f = p.benign.front();
  const auto windows = p.mapper->synthesize_windows(test::lab(), f);
  PredictionHooks hooks;
  hooks.audio_transform = [](acoustics::MultiChannelAudio& audio) {
    attacks::PhaseSyncSoundAttackConfig cfg;
    cfg.amplitude_factor = 0.0;
    cfg.channels = {0, 1, 2, 3};
    attacks::apply_phase_sync_attack(audio, cfg);
  };
  const auto clean = p.mapper->predict_windows(windows);
  const auto attacked = p.mapper->predict_windows(windows, hooks);
  double diff = 0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    diff += (clean[i].accel - attacked[i].accel).norm();
  EXPECT_GT(diff / static_cast<double>(clean.size()), 0.01);
}

TEST(Integration, FrequencyGroupRemovalDegradesAccuracy) {
  const auto& p = pipeline();
  const auto& f = p.benign.back();
  PredictionHooks hooks;
  hooks.signature_transform = [&](ml::Tensor& sig) {
    remove_frequency_group(sig, dsp::FreqGroup::kAerodynamic,
                           p.mapper->config().dataset.signature);
  };
  const double clean_mse = p.mapper->test_mse(test::lab(), std::span{&f, 1});
  const double ablated_mse = p.mapper->test_mse(test::lab(), std::span{&f, 1}, hooks);
  EXPECT_GT(ablated_mse, clean_mse);
}

// ---------------------------------------------------------------------------
// Streaming equivalence: a flight pushed chunk-by-chunk through RcaSession +
// InferenceScheduler must reproduce RcaEngine::analyze bit for bit —
// signature windows, residual decisions, GPS fix decisions, health tallies
// and the final report — at any thread count.
//
// The offline pipeline synthesizes each analysis window independently
// (seeded per window start), so a continuous recording matches the offline
// windows only where the grid tiles disjointly: stride == window.  The
// equivalence mapper transplants the trained pipeline weights into a
// stride == window configuration (save/load validates model kind and
// parameter shapes, not stride), and the "recording" is the settle-period
// audio followed by the offline windows' concatenation — exactly what a
// microphone would have captured if the synthesizer were the world.

const SensoryMapper& stream_mapper() {
  static const std::unique_ptr<SensoryMapper> m = [] {
    const auto& p = pipeline();
    SensoryMapperConfig cfg = p.mapper->config();
    cfg.dataset.stride = cfg.dataset.signature.window_seconds;
    auto out = std::make_unique<SensoryMapper>(cfg);
    const std::string path = "/tmp/soundboost_test_stream_mapper.bin";
    if (!p.mapper->save(path) || !out->load(path))
      throw std::logic_error{"stream_mapper: weight transplant failed"};
    std::remove(path.c_str());
    return out;
  }();
  return *m;
}

acoustics::MultiChannelAudio continuous_recording(const Flight& f,
                                                  const SensoryMapper& m) {
  const auto& ds = m.config().dataset;
  const auto synth = test::lab().synthesizer(f);
  acoustics::MultiChannelAudio out =
      synth.synthesize(f.log, 0.0, ds.settle_time);
  for (const WindowSpan& w :
       window_grid(ds.settle_time, ds.stride, ds.signature.window_seconds,
                   f.log.duration())) {
    const auto win = synth.synthesize(f.log, w.t0, w.t1);
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      out.channels[c].insert(out.channels[c].end(), win.channels[c].begin(),
                             win.channels[c].end());
  }
  return out;
}

struct StreamOutcome {
  RcaReport report;
  RcaDecisionTrace trace;
  std::vector<stream::VerdictEvent> events;
  std::size_t shed = 0;
};

StreamOutcome run_streaming(const Flight& f, const SensoryMapper& m,
                            const PredictionHooks& hooks = {},
                            std::size_t chunk = 1600) {
  const auto& p = pipeline();
  stream::RcaSessionConfig sc;
  sc.hooks = hooks;
  // Inert unless the recorder-on test flips SB_RECORDER's switch; keeps any
  // black-box dumps out of the working directory.
  sc.recorder.out_dir = ::testing::TempDir();
  stream::RcaSession session{1, m, *p.imu_det, *p.gps_det, sc};
  stream::InferenceScheduler sched{m};
  sched.attach(session);

  const auto audio = continuous_recording(f, m);
  const double fs = audio.sample_rate;
  const std::size_t total = audio.num_samples();
  std::size_t imu_i = 0, gps_i = 0;
  StreamOutcome out;
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, total);
    // Sensors lead the audio: by the time a window's last audio sample
    // arrives, a live recorder has every IMU sample and GPS fix up to that
    // instant (the GPS stage consumes fixes with t <= window end).
    const double until = static_cast<double>(end) / fs;
    std::size_t imu_hi = imu_i;
    while (imu_hi < f.log.imu.size() && f.log.imu[imu_hi].t <= until) ++imu_hi;
    session.push_imu(std::span{f.log.imu}.subspan(imu_i, imu_hi - imu_i));
    imu_i = imu_hi;
    std::size_t gps_hi = gps_i;
    while (gps_hi < f.log.gps.size() && f.log.gps[gps_hi].t <= until) ++gps_hi;
    session.push_gps(std::span{f.log.gps}.subspan(gps_i, gps_hi - gps_i));
    gps_i = gps_hi;

    acoustics::MultiChannelAudio slice;
    slice.sample_rate = fs;
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      slice.channels[c].assign(audio.channels[c].begin() + static_cast<std::ptrdiff_t>(begin),
                               audio.channels[c].begin() + static_cast<std::ptrdiff_t>(end));
    session.push_audio(slice);
    sched.pump();
    for (auto& e : session.poll_verdicts()) out.events.push_back(e);
  }
  session.push_imu(std::span{f.log.imu}.subspan(imu_i));
  session.push_gps(std::span{f.log.gps}.subspan(gps_i));
  sched.drain();
  for (auto& e : session.poll_verdicts()) out.events.push_back(e);
  out.shed = sched.windows_shed();
  out.report = session.finish(&out.trace);
  return out;
}

// run_streaming with a simulated server crash at mid-flight: the session is
// drained, checkpointed (SBSESS01), destroyed together with its scheduler,
// then restored into a NEW session on a NEW scheduler which serves the rest
// of the stream.  Everything downstream — events, trace, report — must be
// bitwise identical to the uninterrupted paths.
StreamOutcome run_streaming_with_restart(const Flight& f,
                                         const SensoryMapper& m,
                                         const PredictionHooks& hooks = {},
                                         std::size_t chunk = 1600) {
  const auto& p = pipeline();
  stream::RcaSessionConfig sc;
  sc.hooks = hooks;
  sc.recorder.out_dir = ::testing::TempDir();
  auto session =
      std::make_unique<stream::RcaSession>(1, m, *p.imu_det, *p.gps_det, sc);
  auto sched = std::make_unique<stream::InferenceScheduler>(m);
  sched->attach(*session);

  const auto audio = continuous_recording(f, m);
  const double fs = audio.sample_rate;
  const std::size_t total = audio.num_samples();
  std::size_t imu_i = 0, gps_i = 0;
  bool restarted = false;
  StreamOutcome out;
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, total);
    const double until = static_cast<double>(end) / fs;
    std::size_t imu_hi = imu_i;
    while (imu_hi < f.log.imu.size() && f.log.imu[imu_hi].t <= until) ++imu_hi;
    session->push_imu(std::span{f.log.imu}.subspan(imu_i, imu_hi - imu_i));
    imu_i = imu_hi;
    std::size_t gps_hi = gps_i;
    while (gps_hi < f.log.gps.size() && f.log.gps[gps_hi].t <= until) ++gps_hi;
    session->push_gps(std::span{f.log.gps}.subspan(gps_i, gps_hi - gps_i));
    gps_i = gps_hi;

    acoustics::MultiChannelAudio slice;
    slice.sample_rate = fs;
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      slice.channels[c].assign(
          audio.channels[c].begin() + static_cast<std::ptrdiff_t>(begin),
          audio.channels[c].begin() + static_cast<std::ptrdiff_t>(end));
    session->push_audio(slice);
    sched->pump();
    for (auto& e : session->poll_verdicts()) out.events.push_back(e);

    if (!restarted && end >= total / 2) {
      restarted = true;
      sched->drain();
      for (auto& e : session->poll_verdicts()) out.events.push_back(e);
      out.shed += sched->windows_shed();
      const std::string path = ::testing::TempDir() + "sb_midflight.sbsess";
      EXPECT_TRUE(session->checkpoint(path));
      // Crash: the old scheduler and session go away entirely.
      sched.reset();
      session.reset();
      session = stream::RcaSession::restore(path, m, *p.imu_det, *p.gps_det, sc);
      EXPECT_NE(session, nullptr);
      if (!session) return out;
      sched = std::make_unique<stream::InferenceScheduler>(m);
      sched->attach(*session);
    }
  }
  session->push_imu(std::span{f.log.imu}.subspan(imu_i));
  session->push_gps(std::span{f.log.gps}.subspan(gps_i));
  sched->drain();
  for (auto& e : session->poll_verdicts()) out.events.push_back(e);
  out.shed += sched->windows_shed();
  out.report = session->finish(&out.trace);
  return out;
}

void expect_health_eq(const faults::HealthReport& a,
                      const faults::HealthReport& b) {
  for (std::size_t c = 0; c < sensors::kNumMics; ++c)
    EXPECT_EQ(a.mic_windows_masked[c], b.mic_windows_masked[c]) << "mic " << c;
  EXPECT_EQ(a.windows_total, b.windows_total);
  EXPECT_EQ(a.windows_degraded, b.windows_degraded);
  EXPECT_EQ(a.imu_samples_total, b.imu_samples_total);
  EXPECT_EQ(a.imu_samples_nonfinite, b.imu_samples_nonfinite);
  EXPECT_EQ(a.imu_windows_skipped, b.imu_windows_skipped);
  EXPECT_EQ(a.gps_fixes_total, b.gps_fixes_total);
  EXPECT_EQ(a.gps_fixes_nonfinite, b.gps_fixes_nonfinite);
  EXPECT_EQ(a.gps_coast_intervals, b.gps_coast_intervals);
  EXPECT_EQ(a.gps_coast_seconds, b.gps_coast_seconds);
  EXPECT_EQ(a.kf_fallback_steps, b.kf_fallback_steps);
}

void expect_imu_decision_eq(const ImuWindowDecision& a,
                            const ImuWindowDecision& b, std::size_t i) {
  EXPECT_EQ(a.t0, b.t0) << "imu window " << i;
  EXPECT_EQ(a.t1, b.t1) << "imu window " << i;
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_EQ(a.mean_z[axis], b.mean_z[axis]) << "imu window " << i;
    EXPECT_EQ(a.spread_z[axis], b.spread_z[axis]) << "imu window " << i;
  }
  EXPECT_EQ(a.score, b.score) << "imu window " << i;
  EXPECT_EQ(a.threshold, b.threshold) << "imu window " << i;
  EXPECT_EQ(a.flagged, b.flagged) << "imu window " << i;
  EXPECT_EQ(a.alert, b.alert) << "imu window " << i;
}

// Bitwise comparison of the two paths' full evidence: EXPECT_EQ on doubles
// is exact, so any drift in a residual or threshold fails loudly.
void expect_equivalent(const RcaReport& off, const RcaDecisionTrace& off_tr,
                       const StreamOutcome& on) {
  EXPECT_EQ(off.imu_attacked, on.report.imu_attacked);
  EXPECT_EQ(off.imu_detect_time, on.report.imu_detect_time);
  EXPECT_EQ(off.gps_attacked, on.report.gps_attacked);
  EXPECT_EQ(off.gps_detect_time, on.report.gps_detect_time);
  EXPECT_EQ(off.gps_mode_used, on.report.gps_mode_used);
  expect_health_eq(off.health, on.report.health);

  ASSERT_EQ(off_tr.imu.size(), on.trace.imu.size());
  for (std::size_t i = 0; i < off_tr.imu.size(); ++i)
    expect_imu_decision_eq(off_tr.imu[i], on.trace.imu[i], i);

  ASSERT_EQ(off_tr.gps.size(), on.trace.gps.size());
  for (std::size_t i = 0; i < off_tr.gps.size(); ++i) {
    const auto& a = off_tr.gps[i];
    const auto& b = on.trace.gps[i];
    EXPECT_EQ(a.t, b.t) << "gps fix " << i;
    EXPECT_EQ(a.running_mean_err, b.running_mean_err) << "gps fix " << i;
    EXPECT_EQ(a.pos_dev, b.pos_dev) << "gps fix " << i;
    EXPECT_EQ(a.vel_threshold, b.vel_threshold) << "gps fix " << i;
    EXPECT_EQ(a.pos_threshold, b.pos_threshold) << "gps fix " << i;
    EXPECT_EQ(a.vel_hit, b.vel_hit) << "gps fix " << i;
    EXPECT_EQ(a.pos_hit, b.pos_hit) << "gps fix " << i;
    EXPECT_EQ(a.alert, b.alert) << "gps fix " << i;
    EXPECT_EQ(a.coast_reset, b.coast_reset) << "gps fix " << i;
  }

  // The live event stream carries the same IMU evidence in the same order,
  // stamped with non-decreasing availability times.
  std::vector<const stream::VerdictEvent*> imu_events;
  double last_decided = 0.0;
  for (const auto& e : on.events) {
    EXPECT_GE(e.decided_at, last_decided);
    last_decided = e.decided_at;
    if (e.kind == stream::VerdictEvent::Kind::kImuWindow)
      imu_events.push_back(&e);
  }
  ASSERT_EQ(imu_events.size(), on.trace.imu.size());
  for (std::size_t i = 0; i < imu_events.size(); ++i)
    expect_imu_decision_eq(imu_events[i]->imu, on.trace.imu[i], i);
}

// Runs both paths at 1 and 4 threads and demands bitwise-identical evidence
// everywhere — between streaming and offline at each count, and across the
// two counts.
void check_equivalence(const Flight& f, const PredictionHooks& hooks = {}) {
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  std::vector<RcaDecisionTrace> offline_traces;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool::set_threads(threads);
    RcaDecisionTrace off_tr;
    const auto off = engine.analyze(test::lab(), f, hooks, &off_tr);
    const auto on = run_streaming(f, m, hooks);
    EXPECT_EQ(on.shed, 0u) << "threads " << threads;
    expect_equivalent(off, off_tr, on);
    offline_traces.push_back(off_tr);
  }
  util::ThreadPool::set_threads(0);
  ASSERT_EQ(offline_traces[0].imu.size(), offline_traces[1].imu.size());
  for (std::size_t i = 0; i < offline_traces[0].imu.size(); ++i)
    expect_imu_decision_eq(offline_traces[0].imu[i], offline_traces[1].imu[i], i);
}

TEST(StreamingEquivalence, ExtractorReslicesOfflineWindowsBitwise) {
  const auto& m = stream_mapper();
  const auto f = test::hover_flight(12.0, 424, 0.4);
  const auto offline = m.synthesize_windows(test::lab(), f);
  ASSERT_FALSE(offline.empty());

  const auto& ds = m.config().dataset;
  stream::StreamingExtractorConfig cfg;
  cfg.settle = ds.settle_time;
  cfg.stride = ds.stride;
  cfg.window_seconds = ds.signature.window_seconds;
  stream::StreamingFeatureExtractor ex{cfg};
  const auto got = ex.push(continuous_recording(f, m));

  ASSERT_EQ(got.size(), offline.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t0, offline[i].t0) << "window " << i;
    EXPECT_EQ(got[i].t1, offline[i].t1) << "window " << i;
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      EXPECT_EQ(got[i].audio.channels[c], offline[i].audio.channels[c])
          << "window " << i << " channel " << c;
  }
}

TEST(StreamingEquivalence, BenignFlightMatchesOfflineAtOneAndFourThreads) {
  check_equivalence(test::hover_flight(25.0, 420, 0.4));
}

TEST(StreamingEquivalence, ChunkSizeDoesNotChangeTheVerdictEvidence) {
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  const auto f = test::hover_flight(25.0, 420, 0.4);
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  RcaDecisionTrace off_tr;
  const auto off = engine.analyze(test::lab(), f, {}, &off_tr);
  // A prime chunk size keeps every window boundary strictly inside a chunk.
  expect_equivalent(off, off_tr, run_streaming(f, m, {}, 1237));
}

TEST(StreamingEquivalence, ImuAttackFlightMatchesOffline) {
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 421);
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  const auto off = engine.analyze(test::lab(), f);
  EXPECT_TRUE(off.imu_attacked);  // the comparison must not be vacuous
  check_equivalence(f);
}

TEST(StreamingEquivalence, GpsSpoofFlightMatchesOffline) {
  const auto f = gps_attack_flight(422);
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  const auto off = engine.analyze(test::lab(), f);
  EXPECT_TRUE(off.gps_attacked);
  check_equivalence(f);
}

TEST(StreamingEquivalence, CheckpointRestoreMidFlightIsBitwiseIdentical) {
  // A crash-and-restore at mid-flight must be invisible in the evidence: the
  // restored session's remaining verdicts, full decision trace and final
  // report stay bitwise identical to the offline analysis (and hence to the
  // uninterrupted streaming path) at 1 and 4 threads.  An attack flight, so
  // the verdict being preserved is a non-vacuous one.
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 421);
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool::set_threads(threads);
    RcaDecisionTrace off_tr;
    const auto off = engine.analyze(test::lab(), f, {}, &off_tr);
    EXPECT_TRUE(off.imu_attacked);
    const auto on = run_streaming_with_restart(f, m);
    EXPECT_EQ(on.shed, 0u) << "threads " << threads;
    expect_equivalent(off, off_tr, on);
  }
  util::ThreadPool::set_threads(0);
}

// Restores the process-wide recorder switch on scope exit.
struct RecorderGuard {
  explicit RecorderGuard(bool on) { obs::set_recorder_enabled(on); }
  ~RecorderGuard() { obs::set_recorder_enabled(false); }
};

TEST(StreamingEquivalence, RecorderOnKeepsEvidenceBitwiseIdentical) {
  // Recording is observation-only: with the flight recorder capturing every
  // chunk/window/verdict event, the served evidence must stay bitwise equal
  // to the offline analysis at 1 and 4 threads — an attack flight, so the
  // final-verdict dump path runs too.
  const auto f = imu_attack_flight(attacks::ImuAttackType::kAccelDos, 421);
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  RecorderGuard recorder_on{true};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ThreadPool::set_threads(threads);
    RcaDecisionTrace off_tr;
    const auto off = engine.analyze(test::lab(), f, {}, &off_tr);
    const auto on = run_streaming(f, m);
    EXPECT_EQ(on.shed, 0u) << "threads " << threads;
    expect_equivalent(off, off_tr, on);
  }
  util::ThreadPool::set_threads(0);
}

TEST(StreamingEquivalence, RecorderOnServingStaysScratchHeapFlat) {
  // The recorder ring is preallocated, so the zero-allocation serving steady
  // state (scratch-pool heap fetches flat after warm-up) must hold with
  // recording enabled.
  util::ThreadPool::set_threads(1);
  RecorderGuard recorder_on{true};
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  const auto f = test::hover_flight(25.0, 420, 0.4);
  stream::RcaSessionConfig sc;
  sc.recorder.out_dir = ::testing::TempDir();
  stream::RcaSession session{11, m, *p.imu_det, *p.gps_det, sc};
  ASSERT_NE(session.recorder(), nullptr);
  stream::InferenceScheduler sched{m};
  sched.attach(session);

  const auto audio = continuous_recording(f, m);
  const double fs = audio.sample_rate;
  const std::size_t total = audio.num_samples();
  const std::size_t chunk = 1600;
  const std::size_t warm_end = total / 2;  // well past settle + pool warm-up
  auto& heap_allocs =
      obs::Registry::instance().counter("ml.workspace.heap_allocs");
  std::uint64_t baseline = 0;
  std::size_t imu_i = 0, gps_i = 0;
  for (std::size_t begin = 0; begin < total; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, total);
    const double until = static_cast<double>(end) / fs;
    std::size_t imu_hi = imu_i;
    while (imu_hi < f.log.imu.size() && f.log.imu[imu_hi].t <= until) ++imu_hi;
    session.push_imu(std::span{f.log.imu}.subspan(imu_i, imu_hi - imu_i));
    imu_i = imu_hi;
    std::size_t gps_hi = gps_i;
    while (gps_hi < f.log.gps.size() && f.log.gps[gps_hi].t <= until) ++gps_hi;
    session.push_gps(std::span{f.log.gps}.subspan(gps_i, gps_hi - gps_i));
    gps_i = gps_hi;
    acoustics::MultiChannelAudio slice;
    slice.sample_rate = fs;
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      slice.channels[c].assign(
          audio.channels[c].begin() + static_cast<std::ptrdiff_t>(begin),
          audio.channels[c].begin() + static_cast<std::ptrdiff_t>(end));
    session.push_audio(slice);
    sched.pump();
    if (begin < warm_end && warm_end <= end) baseline = heap_allocs.value();
  }
  sched.drain();
  ASSERT_GT(baseline, 0u);  // serving ran and the pool was exercised
  EXPECT_EQ(heap_allocs.value(), baseline)
      << "scratch pool grew past the warm-up steady state with recording on";
  EXPECT_GT(session.recorder()->recorded(), 0u);
  session.finish();
  util::ThreadPool::set_threads(0);
}

TEST(StreamingEquivalence, FaultedFlightMatchesOffline) {
  // Dead mic + mid-flight GPS outage: the degradation paths (channel
  // masking, KF coasting) must stay bit-identical online.
  auto f = test::hover_flight(25.0, 423, 0.4);
  faults::FaultPlan plan;
  plan.gps.push_back({faults::GpsFaultType::kOutage, 1.0, 10.0, 15.0});
  faults::apply_to_log(f.log, plan);
  PredictionHooks hooks;
  hooks.audio_transform = [](acoustics::MultiChannelAudio& audio) {
    for (auto& v : audio.channels[1]) v = 0.0;
  };
  const auto& p = pipeline();
  const auto& m = stream_mapper();
  RcaEngine engine{m, *p.imu_det, *p.gps_det};
  RcaDecisionTrace off_tr;
  const auto off = engine.analyze(test::lab(), f, hooks, &off_tr);
  EXPECT_GE(off.health.gps_coast_intervals, 1u);
  EXPECT_FALSE(off.health.mic_alive(1));
  check_equivalence(f, hooks);
}

}  // namespace
}  // namespace sb::core
