#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset.hpp"
#include "core/flight_lab.hpp"
#include "core/imu_rca.hpp"
#include "core/signature.hpp"
#include "test_helpers.hpp"

namespace sb::core {
namespace {

acoustics::MultiChannelAudio tone_audio(double freq, std::size_t n = 8000,
                                        double amp = 0.5) {
  acoustics::MultiChannelAudio audio;
  audio.sample_rate = 16000.0;
  for (auto& ch : audio.channels) {
    ch.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      ch[i] = amp * std::sin(2.0 * M_PI * freq * static_cast<double>(i) / 16000.0);
  }
  return audio;
}

TEST(Signature, ShapeMatchesConfig) {
  SignatureConfig cfg;
  const auto shape = signature_shape(cfg);
  EXPECT_EQ(shape.channels, 4u);
  EXPECT_EQ(shape.frames, 14u);
  EXPECT_EQ(shape.bands, 32u);

  const auto sig = compute_signature(tone_audio(1000.0), cfg);
  ASSERT_EQ(sig.ndim(), 4u);
  EXPECT_EQ(sig.dim(0), 1u);
  EXPECT_EQ(sig.dim(1), 4u);
  EXPECT_EQ(sig.dim(2), 14u);
  EXPECT_EQ(sig.dim(3), 32u);
}

TEST(Signature, StretchedCaptureKeepsShape) {
  SignatureConfig cfg;
  // 5x time-shift augmentation window: 2.5 s of audio -> same grid.
  const auto sig = compute_signature(tone_audio(1000.0, 40000), cfg);
  EXPECT_EQ(sig.dim(2), 14u);
  EXPECT_EQ(sig.dim(3), 32u);
}

TEST(Signature, TooShortWindowThrows) {
  SignatureConfig cfg;
  EXPECT_THROW(compute_signature(tone_audio(1000.0, 512), cfg),
               std::invalid_argument);
}

TEST(Signature, LowPassSuppressesAbove6kHz) {
  SignatureConfig cfg;
  const auto in_band = compute_signature(tone_audio(5000.0), cfg);
  const auto out_band = compute_signature(tone_audio(7500.0), cfg);
  // Feature energy above the silence floor.
  auto energy = [](const ml::Tensor& t) {
    double s = 0;
    for (float v : t.flat()) s += v - dsp::kSilenceFeature;
    return s;
  };
  EXPECT_GT(energy(in_band), 1.5 * energy(out_band));
}

TEST(Signature, ToneLandsInItsBand) {
  SignatureConfig cfg;
  const auto sig = compute_signature(tone_audio(2500.0), cfg);
  // Band 13 covers 2437-2625 Hz; compare against a distant band.
  const std::size_t frames = sig.dim(2), bands = sig.dim(3);
  const double hit = sig[(0 * frames + 5) * bands + 13];
  const double miss = sig[(0 * frames + 5) * bands + 25];
  EXPECT_GT(hit, miss + 2.0);
}

TEST(Signature, RemoveFrequencyGroupSilences) {
  SignatureConfig cfg;
  auto sig = compute_signature(tone_audio(5250.0), cfg);
  remove_frequency_group(sig, dsp::FreqGroup::kAerodynamic, cfg);
  const std::size_t bands = sig.dim(3);
  for (std::size_t i = 0; i < sig.numel(); ++i) {
    if (dsp::group_of_band(i % bands, cfg.bands) == dsp::FreqGroup::kAerodynamic)
      EXPECT_FLOAT_EQ(sig[i], static_cast<float>(dsp::kSilenceFeature));
  }
}

TEST(FlightLab, DeterministicForSameSeed) {
  const auto f1 = test::hover_flight(5.0, 99);
  const auto f2 = test::hover_flight(5.0, 99);
  ASSERT_EQ(f1.log.t.size(), f2.log.t.size());
  for (std::size_t i = 0; i < f1.log.t.size(); i += 100) {
    EXPECT_DOUBLE_EQ(f1.log.true_pos[i].x, f2.log.true_pos[i].x);
    EXPECT_DOUBLE_EQ(f1.log.true_pos[i].z, f2.log.true_pos[i].z);
  }
  EXPECT_EQ(f1.audio_seed, f2.audio_seed);
}

TEST(FlightLab, DifferentSeedsDiffer) {
  const auto f1 = test::hover_flight(5.0, 1);
  const auto f2 = test::hover_flight(5.0, 2);
  EXPECT_NE(f1.audio_seed, f2.audio_seed);
}

TEST(FlightLab, LogStreamsHaveExpectedRates) {
  const auto f = test::hover_flight(5.0, 3);
  const auto& log = f.log;
  EXPECT_NEAR(static_cast<double>(log.t.size()), 5.0 * 400, 2);
  EXPECT_NEAR(static_cast<double>(log.imu.size()), 5.0 * 200, 2);
  EXPECT_NEAR(static_cast<double>(log.gps.size()), 5.0 * 5, 2);
  EXPECT_EQ(log.nav.size(), log.gps.size());
  EXPECT_EQ(log.setpoint.size(), log.t.size());
}

TEST(FlightLab, BenignFlightHasNoAttackMetadata) {
  const auto f = test::hover_flight(4.0, 4);
  EXPECT_FALSE(f.log.imu_attacked);
  EXPECT_FALSE(f.log.gps_attacked);
  EXPECT_LT(f.log.attack_start, 0.0);
}

TEST(FlightLab, AttackMetadataRecorded) {
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 8.0);
  attacks::ImuAttackConfig a;
  a.start = 3.0;
  a.end = 6.0;
  s.imu_attack = a;
  s.seed = 5;
  const auto f = test::lab().fly(s);
  EXPECT_TRUE(f.log.imu_attacked);
  EXPECT_DOUBLE_EQ(f.log.attack_start, 3.0);
  EXPECT_DOUBLE_EQ(f.log.attack_end, 6.0);
}

TEST(FlightLab, HoverStaysNearSetpoint) {
  const auto f = test::hover_flight(8.0, 6);
  double max_err = 0;
  for (std::size_t i = 1600; i < f.log.t.size(); ++i)
    max_err = std::max(max_err, (f.log.true_pos[i] - Vec3{0, 0, -10}).norm());
  EXPECT_LT(max_err, 2.0);
}

TEST(FlightLab, TrainingScenariosCoverSixFamilies) {
  const auto scenarios = test::lab().training_scenarios(6, 30.0);
  EXPECT_EQ(scenarios.size(), 36u);  // the paper's 36 training flights
  std::set<std::string> names;
  for (const auto& s : scenarios) names.insert(s.mission.name());
  EXPECT_GE(names.size(), 5u);
}

TEST(FlightLab, MotorHealthShiftsRotorSpeeds) {
  FlightScenario healthy;
  healthy.mission = sim::Mission::hover({0, 0, -10}, 6.0);
  healthy.seed = 7;
  FlightScenario degraded = healthy;
  degraded.motor_health = 0.85;
  const auto f1 = test::lab().fly(healthy);
  const auto f2 = test::lab().fly(degraded);
  const double w1 = f1.log.mean_omega(3, 6)[0];
  const double w2 = f2.log.mean_omega(3, 6)[0];
  EXPECT_GT(w2, w1 * 1.04);  // degraded motors must spin faster to hover
}

TEST(Dataset, WindowCountMatchesStride) {
  DatasetConfig cfg;
  cfg.stride = 0.5;
  cfg.settle_time = 2.0;
  DatasetBuilder builder{cfg, test::lab()};
  const auto f = test::hover_flight(7.0, 8);
  builder.add_flight(f);
  // Windows start at 2.0, 2.5, ..., last with t0+0.5 <= ~7.0.
  EXPECT_NEAR(static_cast<double>(builder.size()), 9.0, 1.0);
}

TEST(Dataset, AugmentationMultipliesWindows) {
  DatasetConfig plain;
  plain.stride = 0.5;
  DatasetBuilder b1{plain, test::lab()};
  DatasetConfig aug = plain;
  aug.augmentation_factors = {2.0};
  DatasetBuilder b2{aug, test::lab()};
  const auto f = test::hover_flight(8.0, 9);
  b1.add_flight(f);
  b2.add_flight(f);
  EXPECT_GT(b2.size(), b1.size());
  EXPECT_LE(b2.size(), 2 * b1.size());
}

TEST(Dataset, BuildShapes) {
  DatasetConfig cfg;
  cfg.stride = 0.5;
  DatasetBuilder builder{cfg, test::lab()};
  builder.add_flight(test::hover_flight(6.0, 10));
  const auto data = builder.build();
  ASSERT_EQ(data.x.ndim(), 4u);
  EXPECT_EQ(data.x.dim(0), builder.size());
  EXPECT_EQ(data.y.dim(1), kLabelDim);
}

TEST(Dataset, HoverLabelsAreNearZeroAccel) {
  DatasetConfig cfg;
  cfg.stride = 0.5;
  DatasetBuilder builder{cfg, test::lab()};
  builder.add_flight(test::hover_flight(6.0, 11));
  const auto data = builder.build();
  for (std::size_t i = 0; i < data.y.dim(0); ++i) {
    EXPECT_LT(std::abs(data.y[i * kLabelDim + 0]), 1.5);
    EXPECT_LT(std::abs(data.y[i * kLabelDim + 2]), 1.5);
  }
}

TEST(FlightLab, ActuatorDosSlowsRotorsAndCostsAltitude) {
  // §V-B extension: the PWM block waveform audibly collapses the attacked
  // rotors' speed and the vehicle loses altitude during the attack.
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -30}, 20.0);
  attacks::ActuatorDosConfig a;
  a.start = 8.0;
  a.end = 14.0;
  s.actuator_attack = a;
  s.seed = 15;
  const auto f = test::lab().fly(s);

  double min_omega = 1e9, max_sink = -1e9;
  for (std::size_t i = 0; i < f.log.t.size(); ++i) {
    if (f.log.t[i] > 8.3 && f.log.t[i] < 14.0) {
      min_omega = std::min(min_omega, f.log.rotor_omega[i][0]);
      max_sink = std::max(max_sink, f.log.true_pos[i].z);
    }
  }
  EXPECT_LT(min_omega, 0.7 * test::lab().config().quad.hover_omega());
  EXPECT_GT(max_sink, -30.0 + 0.3);  // sank at least 0.3 m (NED z down)
}

TEST(FlightLab, BenignFlightUnaffectedByInactiveActuatorConfig) {
  FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 8.0);
  attacks::ActuatorDosConfig a;
  a.start = 100.0;  // never active within the flight
  a.end = 200.0;
  s.actuator_attack = a;
  s.seed = 16;
  const auto attacked_cfg = test::lab().fly(s);
  s.actuator_attack.reset();
  const auto clean = test::lab().fly(s);
  ASSERT_EQ(attacked_cfg.log.t.size(), clean.log.t.size());
  EXPECT_DOUBLE_EQ(attacked_cfg.log.true_pos.back().z, clean.log.true_pos.back().z);
}

TEST(Signature, DeterministicForSameAudio) {
  SignatureConfig cfg;
  const auto audio = tone_audio(2500.0);
  const auto a = compute_signature(audio, cfg);
  const auto b = compute_signature(audio, cfg);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(ImuRca, ResidualWindowsCarryImuRateSamples) {
  const auto f = test::hover_flight(6.0, 12);
  std::vector<TimedPrediction> preds;
  for (double t0 = 2.0; t0 + 0.5 <= 6.0; t0 += 0.5)
    preds.push_back({t0, t0 + 0.5, {}, {}});
  const auto windows = ImuRcaDetector::residuals(f, preds, 0);
  ASSERT_FALSE(windows.empty());
  for (const auto& w : windows) EXPECT_NEAR(static_cast<double>(w.samples.size()), 100, 3);
}

TEST(ImuRca, BaseliningRemovesConstantOffset) {
  const auto f = test::hover_flight(6.0, 13);
  std::vector<TimedPrediction> preds;
  // Predictions biased by a constant +2 in x relative to the IMU.
  for (double t0 = 2.0; t0 + 0.5 <= 6.0; t0 += 0.5) {
    const Vec3 imu = f.log.mean_imu_accel(t0, t0 + 0.5);
    preds.push_back({t0, t0 + 0.5, imu + Vec3{2.0, 0, 0}, {}});
  }
  const auto windows = ImuRcaDetector::residuals(f, preds, 4);
  double mean_x = 0;
  std::size_t n = 0;
  for (const auto& w : windows)
    for (const auto& r : w.samples) {
      mean_x += r.x;
      ++n;
    }
  EXPECT_NEAR(mean_x / static_cast<double>(n), 0.0, 0.2);
}

TEST(ImuRca, AnalyzeRequiresCalibration) {
  ImuRcaDetector det{{}};
  std::vector<WindowResiduals> windows;
  EXPECT_THROW(det.analyze(windows), std::logic_error);
}

TEST(ImuRca, DetectsSyntheticSpreadInflation) {
  // Build synthetic benign windows (residual std 0.1) and attack windows
  // (std 1.5); the detector must flag only the latter.
  Rng rng{14};
  auto make_window = [&](double t, double std, double mean) {
    WindowResiduals w;
    w.t0 = t;
    w.t1 = t + 0.5;
    for (int i = 0; i < 100; ++i)
      w.samples.push_back({rng.normal(mean, std), rng.normal(mean, std),
                           rng.normal(mean, std)});
    return w;
  };
  std::vector<WindowResiduals> benign;
  for (int i = 0; i < 200; ++i)
    benign.push_back(make_window(i * 0.5, 0.1, 0.0));
  ImuRcaDetector det{{}};
  det.calibrate(benign);

  std::vector<WindowResiduals> attack = benign;
  for (int i = 100; i < 120; ++i)
    attack[static_cast<std::size_t>(i)] =
        make_window(i * 0.5, 1.5, 0.0);
  const auto r_benign = det.analyze(benign);
  const auto r_attack = det.analyze(attack);
  EXPECT_FALSE(r_benign.attacked);
  EXPECT_TRUE(r_attack.attacked);
  EXPECT_GE(r_attack.detect_time, 50.0);
  EXPECT_LE(r_attack.detect_time, 52.0);
}

TEST(ImuRca, DetectsSyntheticMeanShift) {
  Rng rng{15};
  auto make_window = [&](double t, double mean) {
    WindowResiduals w;
    w.t0 = t;
    w.t1 = t + 0.5;
    for (int i = 0; i < 100; ++i)
      w.samples.push_back({rng.normal(mean, 0.1), rng.normal(0, 0.1),
                           rng.normal(0, 0.1)});
    return w;
  };
  std::vector<WindowResiduals> benign;
  for (int i = 0; i < 200; ++i) benign.push_back(make_window(i * 0.5, 0.0));
  ImuRcaDetector det{{}};
  det.calibrate(benign);

  std::vector<WindowResiduals> attack = benign;
  for (int i = 100; i < 120; ++i)
    attack[static_cast<std::size_t>(i)] = make_window(i * 0.5, 0.8);
  EXPECT_TRUE(det.analyze(attack).attacked);
}

TEST(ImuRca, ThresholdFloorEngagesOnDegenerateCalibration) {
  // Near-identical residual windows calibrate an absurdly tight threshold;
  // the min_threshold floor keeps ordinary sensor jitter from becoming an
  // alert storm.
  Rng rng{17};
  std::vector<WindowResiduals> degenerate;
  for (int i = 0; i < 50; ++i) {
    WindowResiduals w;
    w.t0 = i * 0.5;
    w.t1 = w.t0 + 0.5;
    for (int j = 0; j < 100; ++j)
      w.samples.push_back({rng.normal(0.0, 1e-7), rng.normal(0.0, 1e-7),
                           rng.normal(0.0, 1e-7)});
    degenerate.push_back(std::move(w));
  }
  ImuRcaConfig cfg;
  ImuRcaDetector det{cfg};
  det.calibrate(degenerate);
  EXPECT_TRUE(std::isfinite(det.score_threshold()));
  EXPECT_GE(det.score_threshold(), cfg.min_threshold);
}

TEST(ImuRca, ShortWindowsAreSkippedAndCounted) {
  Rng rng{18};
  auto make_window = [&](double t, int n) {
    WindowResiduals w;
    w.t0 = t;
    w.t1 = t + 0.5;
    for (int i = 0; i < n; ++i)
      w.samples.push_back({rng.normal(0, 0.1), rng.normal(0, 0.1),
                           rng.normal(0, 0.1)});
    return w;
  };
  std::vector<WindowResiduals> benign;
  for (int i = 0; i < 100; ++i) benign.push_back(make_window(i * 0.5, 100));
  ImuRcaDetector det{{}};
  det.calibrate(benign);

  std::vector<WindowResiduals> gappy = benign;
  gappy[10] = make_window(5.0, 2);  // dropout leaves 2 usable samples
  gappy[11] = make_window(5.5, 0);  // total dropout
  const auto r = det.analyze(gappy);
  EXPECT_EQ(r.windows_skipped, 2u);
  EXPECT_EQ(r.windows_tested, gappy.size() - 2);
  EXPECT_FALSE(r.attacked);
}

TEST(ImuRca, WindowKsIsLargeUnderAttackDistribution) {
  Rng rng{16};
  auto make_window = [&](double std) {
    WindowResiduals w;
    w.t1 = 0.5;
    for (int i = 0; i < 100; ++i)
      w.samples.push_back({rng.normal(0, std), rng.normal(0, std), rng.normal(0, std)});
    return w;
  };
  std::vector<WindowResiduals> benign;
  for (int i = 0; i < 100; ++i) benign.push_back(make_window(0.3));
  ImuRcaDetector det{{}};
  det.calibrate(benign);
  const double ks_benign = det.window_ks(make_window(0.3));
  const double ks_attack = det.window_ks(make_window(2.8));
  EXPECT_GT(ks_attack, 3.0 * ks_benign);
}

}  // namespace
}  // namespace sb::core
