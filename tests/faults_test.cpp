// Fault-injection subsystem tests: determinism of the injectors, strict
// severity-0 no-ops, the channel-health rules, and the graceful-degradation
// behavior of the detector stages on degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "core/imu_rca.hpp"
#include "faults/fault_injector.hpp"
#include "faults/health.hpp"
#include "test_helpers.hpp"

namespace sb::faults {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool same_imu(const std::vector<sim::ImuSample>& a,
              const std::vector<sim::ImuSample>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(sim::ImuSample)) == 0);
}

bool same_gps(const std::vector<sim::GpsSample>& a,
              const std::vector<sim::GpsSample>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(sim::GpsSample)) == 0);
}

// Synthetic deterministic audio (sum of incommensurate oscillators + ramp):
// no plateaus, nonzero on every channel.
acoustics::MultiChannelAudio synth_audio(std::size_t n = 4096, double fs = 16000.0) {
  acoustics::MultiChannelAudio audio;
  audio.sample_rate = fs;
  for (std::size_t c = 0; c < sensors::kNumMics; ++c) {
    auto& ch = audio.channels[c];
    ch.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / fs;
      ch[i] = 0.4 * std::sin(2.0 * M_PI * (440.0 + 17.0 * static_cast<double>(c)) * t) +
              0.1 * std::sin(2.0 * M_PI * 1337.7 * t + static_cast<double>(c));
    }
  }
  return audio;
}

// ---------------------------------------------------------------------------
// Injector determinism and severity-0 contract.

TEST(FaultInjector, SeverityZeroIsStrictNoOpOnLog) {
  const auto flight = test::hover_flight(6.0, 11);
  for (auto imu_type : {ImuFaultType::kDropout, ImuFaultType::kStuckAt,
                        ImuFaultType::kNanBurst}) {
    auto log = flight.log;
    FaultPlan plan;
    plan.seed = 5;
    plan.imu.push_back({imu_type, 0.0, 0.0, 1e9});
    EXPECT_FALSE(plan.any_active());
    apply_to_log(log, plan);
    EXPECT_TRUE(same_imu(log.imu, flight.log.imu));
  }
  for (auto gps_type : {GpsFaultType::kOutage, GpsFaultType::kLatencyJitter}) {
    auto log = flight.log;
    FaultPlan plan;
    plan.gps.push_back({gps_type, 0.0, 0.0, 1e9});
    apply_to_log(log, plan);
    EXPECT_TRUE(same_gps(log.gps, flight.log.gps));
  }
}

TEST(FaultInjector, SeverityZeroIsStrictNoOpOnAudio) {
  const auto original = synth_audio();
  for (auto type : {MicFaultType::kChannelDead, MicFaultType::kClipping,
                    MicFaultType::kDcOffset, MicFaultType::kSampleDrop}) {
    auto audio = original;
    FaultPlan plan;
    plan.mic.push_back({type, 1, 0.0, 0.0, 1e9});
    apply_to_audio(audio, 0.0, plan);
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      EXPECT_EQ(audio.channels[c], original.channels[c]);
  }
}

class FaultSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultSeedTest, SamePlanSameOutcomeOnLog) {
  const auto flight = test::hover_flight(6.0, 12);
  FaultPlan plan;
  plan.seed = GetParam();
  plan.imu.push_back({ImuFaultType::kDropout, 0.5, 1.0, 4.0});
  plan.imu.push_back({ImuFaultType::kNanBurst, 0.8, 2.0, 5.0});
  plan.gps.push_back({GpsFaultType::kLatencyJitter, 0.7, 0.0, 1e9});

  auto a = flight.log;
  auto b = flight.log;
  apply_to_log(a, plan);
  apply_to_log(b, plan);
  EXPECT_EQ(a.imu.size(), b.imu.size());
  EXPECT_EQ(a.gps.size(), b.gps.size());
  EXPECT_TRUE(same_gps(a.gps, b.gps));
  // NaN != NaN, so compare the IMU stream bytewise.
  EXPECT_TRUE(same_imu(a.imu, b.imu));
  EXPECT_LT(a.imu.size(), flight.log.imu.size());  // dropout really dropped
}

TEST_P(FaultSeedTest, OverlappingWindowsCorruptSharedSamplesIdentically) {
  // Two analysis windows over the same recording, offset by a stride: the
  // per-sample decisions key on absolute sample index, so the overlap region
  // must come out identical in both.
  const auto fs = 16000.0;
  const auto full = synth_audio(8192, fs);
  const std::size_t stride = 2048;

  FaultPlan plan;
  plan.seed = GetParam();
  plan.mic.push_back({MicFaultType::kSampleDrop, 0, 0.9, 0.0, 1e9});

  auto w0 = full;  // window starting at t=0
  acoustics::MultiChannelAudio w1;  // window starting at stride samples
  w1.sample_rate = fs;
  for (std::size_t c = 0; c < sensors::kNumMics; ++c)
    w1.channels[c].assign(full.channels[c].begin() + stride, full.channels[c].end());

  apply_to_audio(w0, 0.0, plan);
  apply_to_audio(w1, static_cast<double>(stride) / fs, plan);
  for (std::size_t i = 0; i < w1.channels[0].size(); ++i)
    ASSERT_EQ(w0.channels[0][stride + i], w1.channels[0][i]) << "sample " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSeedTest, ::testing::Values(1u, 42u, 977u));

TEST(FaultInjector, DeadChannelSilencesOnlyTargetInterval) {
  auto audio = synth_audio();
  const auto original = audio;
  FaultPlan plan;
  plan.mic.push_back({MicFaultType::kChannelDead, 2, 1.0, 0.05, 0.1});
  apply_to_audio(audio, 0.0, plan);
  const auto fs = audio.sample_rate;
  for (std::size_t i = 0; i < audio.channels[2].size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    if (t >= 0.05 && t < 0.1)
      EXPECT_EQ(audio.channels[2][i], 0.0);
    else
      EXPECT_EQ(audio.channels[2][i], original.channels[2][i]);
  }
  EXPECT_EQ(audio.channels[0], original.channels[0]);
}

TEST(FaultInjector, GpsJitterPreservesTimeOrder) {
  const auto flight = test::hover_flight(6.0, 13);
  auto log = flight.log;
  FaultPlan plan;
  plan.seed = 3;
  plan.gps.push_back({GpsFaultType::kLatencyJitter, 1.0, 0.0, 1e9});
  apply_to_log(log, plan);
  ASSERT_EQ(log.gps.size(), flight.log.gps.size());
  bool any_delayed = false;
  for (std::size_t i = 0; i < log.gps.size(); ++i) {
    EXPECT_GE(log.gps[i].t, flight.log.gps[i].t);  // forward-only
    if (i > 0) {
      EXPECT_LT(log.gps[i - 1].t, log.gps[i].t);
    }
    any_delayed = any_delayed || log.gps[i].t > flight.log.gps[i].t;
  }
  EXPECT_TRUE(any_delayed);
}

TEST(FaultInjector, GpsOutageRemovesSeverityFractionOfInterval) {
  const auto flight = test::hover_flight(8.0, 14);
  auto log = flight.log;
  FaultPlan plan;
  plan.gps.push_back({GpsFaultType::kOutage, 0.5, 2.0, 6.0});
  apply_to_log(log, plan);
  // severity 0.5 of [2, 6) -> all fixes in [2, 4) gone, the rest intact.
  for (const auto& s : log.gps) EXPECT_FALSE(s.t >= 2.0 && s.t < 4.0);
  EXPECT_LT(log.gps.size(), flight.log.gps.size());
}

TEST(FaultInjector, StuckAtFreezesAtLastPreFaultReading) {
  const auto flight = test::hover_flight(6.0, 15);
  auto log = flight.log;
  FaultPlan plan;
  plan.imu.push_back({ImuFaultType::kStuckAt, 1.0, 2.0, 4.0});
  apply_to_log(log, plan);
  ASSERT_EQ(log.imu.size(), flight.log.imu.size());
  const sim::ImuSample* held = nullptr;
  for (const auto& s : flight.log.imu)
    if (s.t < 2.0) held = &s;
  ASSERT_NE(held, nullptr);
  for (std::size_t i = 0; i < log.imu.size(); ++i) {
    EXPECT_EQ(log.imu[i].t, flight.log.imu[i].t);  // timestamps advance
    if (log.imu[i].t >= 2.0 && log.imu[i].t < 4.0) {
      EXPECT_EQ(log.imu[i].accel_ned.x, held->accel_ned.x);
    }
  }
}

TEST(FaultInjector, SingleSampleLogSurvivesEveryFault) {
  sim::FlightLog log;
  log.rates = test::lab().config().rates;
  log.imu.push_back({1.0, {0, 0, 0.1}, {0, 0, -9.8}, {0.1, 0, 0}});
  log.gps.push_back({});
  log.gps.back().t = 1.0;
  FaultPlan plan;
  plan.seed = 99;
  plan.imu.push_back({ImuFaultType::kDropout, 1.0, 0.0, 1e9});
  plan.imu.push_back({ImuFaultType::kStuckAt, 1.0, 0.0, 1e9});
  plan.imu.push_back({ImuFaultType::kNanBurst, 1.0, 0.0, 1e9});
  plan.gps.push_back({GpsFaultType::kOutage, 1.0, 0.0, 1e9});
  plan.gps.push_back({GpsFaultType::kLatencyJitter, 1.0, 0.0, 1e9});
  apply_to_log(log, plan);  // must not crash
  EXPECT_TRUE(log.imu.empty());  // dropout at severity 1 removes everything
  EXPECT_TRUE(log.gps.empty());
}

// ---------------------------------------------------------------------------
// Channel-health rules.

TEST(ChannelHealth, PureToneIsNotClipped) {
  // 500 Hz spans exactly 128 periods of the 4096-sample buffer, so the DC
  // estimate is clean.
  std::vector<double> tone(4096);
  for (std::size_t i = 0; i < tone.size(); ++i)
    tone[i] = 0.8 * std::sin(2.0 * M_PI * 500.0 * static_cast<double>(i) / 16000.0);
  const auto stats = analyze_channel(tone);
  EXPECT_NEAR(stats.peak, 0.8, 1e-3);
  EXPECT_NEAR(stats.dc, 0.0, 1e-3);
  EXPECT_EQ(stats.clip_fraction, 0.0);
}

TEST(ChannelHealth, HardLimitedAudioIsClipped) {
  std::vector<double> tone(4096);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    const double v =
        0.8 * std::sin(2.0 * M_PI * 440.0 * static_cast<double>(i) / 16000.0);
    tone[i] = std::clamp(v, -0.3, 0.3);  // severe flat-topping
  }
  const auto stats = analyze_channel(tone);
  EXPECT_GT(stats.clip_fraction, 0.3);
}

TEST(ChannelHealth, AllZeroAudioHasZeroStatsAndNoClip) {
  const std::vector<double> silence(4096, 0.0);
  const auto stats = analyze_channel(silence);
  EXPECT_EQ(stats.rms, 0.0);
  EXPECT_EQ(stats.peak, 0.0);
  EXPECT_EQ(stats.clip_fraction, 0.0);  // peak 0 -> the plateau rule is off
}

TEST(ChannelHealth, DeadAndDcChannelsAreUnhealthy) {
  const auto audio = synth_audio();
  std::vector<ChannelStats> stats;
  for (const auto& ch : audio.channels) stats.push_back(analyze_channel(ch));
  const auto all = healthy_channels(stats);
  for (bool h : all) EXPECT_TRUE(h);

  auto dead = stats;
  dead[1].rms = 1e-9;
  dead[1].peak = 1e-9;
  const auto with_dead = healthy_channels(dead);
  EXPECT_FALSE(with_dead[1]);
  EXPECT_TRUE(with_dead[0]);

  auto dc = stats;
  dc[2].dc = 10.0 * dc[2].rms;
  dc[2].rms = std::sqrt(dc[2].rms * dc[2].rms + dc[2].dc * dc[2].dc);
  const auto with_dc = healthy_channels(dc);
  EXPECT_FALSE(with_dc[2]);
}

// ---------------------------------------------------------------------------
// Detector-stage degradation on degenerate inputs.

core::WindowResiduals residual_window(double t0, std::size_t n, double scale,
                                      double poison_fraction = 0.0) {
  core::WindowResiduals w;
  w.t0 = t0;
  w.t1 = t0 + 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        scale * std::sin(0.7 * static_cast<double>(i) + 13.0 * t0);  // benign-ish
    if (poison_fraction > 0.0 &&
        static_cast<double>(i % 10) < 10.0 * poison_fraction)
      w.samples.push_back({kNan, kNan, kNan});
    else
      w.samples.push_back({x, -0.5 * x, 0.25 * x});
  }
  return w;
}

TEST(ImuDegradation, EmptyCalibrationDisablesDetectionInsteadOfAlertStorm) {
  core::ImuRcaDetector det{core::ImuRcaConfig{}};
  std::vector<core::WindowResiduals> starved;
  for (int i = 0; i < 20; ++i)
    starved.push_back(residual_window(static_cast<double>(i), 3, 0.2));  // < 8 samples
  det.calibrate(starved);

  std::vector<core::WindowResiduals> test_windows;
  for (int i = 0; i < 40; ++i)
    test_windows.push_back(residual_window(static_cast<double>(i), 32, 0.2));
  const auto r = det.analyze(test_windows);
  EXPECT_FALSE(r.attacked);
  EXPECT_EQ(r.windows_flagged, 0u);
}

TEST(ImuDegradation, ThresholdStaysFiniteUnderNanPoisonedCalibration) {
  // NaN residuals are dropped before any statistic; calibration on a heavily
  // poisoned benign set must still produce a finite threshold and no alert
  // storm on clean benign windows.
  core::ImuRcaDetector det{core::ImuRcaConfig{}};
  std::vector<core::WindowResiduals> cal;
  for (int i = 0; i < 30; ++i)
    cal.push_back(residual_window(static_cast<double>(i), 48, 0.2, 0.5));
  // The NaNs never reach WindowResiduals through residuals(); simulate that
  // hygiene here by filtering like residuals() does.
  faults::HealthReport health;
  for (auto& w : cal) {
    std::erase_if(w.samples, [&](const Vec3& r) {
      const bool bad =
          !(std::isfinite(r.x) && std::isfinite(r.y) && std::isfinite(r.z));
      if (bad) ++health.imu_samples_nonfinite;
      return bad;
    });
  }
  EXPECT_GT(health.imu_samples_nonfinite, 0u);
  det.calibrate(cal);

  std::vector<core::WindowResiduals> benign;
  for (int i = 0; i < 40; ++i)
    benign.push_back(residual_window(40.0 + static_cast<double>(i), 32, 0.2));
  const auto r = det.analyze(benign);
  EXPECT_TRUE(std::isfinite(r.max_score));
  EXPECT_FALSE(r.attacked);
}

TEST(ImuDegradation, ResidualsDropNonFiniteSamplesAndRecordWhy) {
  auto flight = test::hover_flight(8.0, 16);
  FaultPlan plan;
  plan.seed = 7;
  plan.imu.push_back({ImuFaultType::kNanBurst, 1.0, 2.0, 6.0});
  apply_to_log(flight.log, plan);

  // Predictions are irrelevant to the hygiene logic; use zero-accel windows.
  std::vector<core::TimedPrediction> preds;
  for (double t = 0.0; t < 7.0; t += 1.0) preds.push_back({t, t + 1.0, {}, {}});
  HealthReport health;
  const auto windows = core::ImuRcaDetector::residuals(flight, preds, 0, &health);
  EXPECT_GT(health.imu_samples_nonfinite, 0u);
  EXPECT_GT(health.imu_samples_total, health.imu_samples_nonfinite);
  for (const auto& w : windows)
    for (const auto& r : w.samples) {
      EXPECT_TRUE(std::isfinite(r.x));
      EXPECT_TRUE(std::isfinite(r.z));
    }
}

TEST(HealthReport, AliveAndDegradedRules) {
  HealthReport h;
  EXPECT_EQ(h.mics_alive(), sensors::kNumMics);
  EXPECT_FALSE(h.degraded());
  h.windows_total = 10;
  h.mic_windows_masked[3] = 6;  // masked in more than half the windows
  h.windows_degraded = 6;
  EXPECT_FALSE(h.mic_alive(3));
  EXPECT_TRUE(h.mic_alive(0));
  EXPECT_EQ(h.mics_alive(), sensors::kNumMics - 1);
  EXPECT_TRUE(h.degraded());
}

}  // namespace
}  // namespace sb::faults
