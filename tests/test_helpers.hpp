// Shared fixtures for the SoundBoost test suite: small, fast flights and a
// cached FlightLab so expensive setup is not repeated per test.
#pragma once

#include "core/flight_lab.hpp"

namespace sb::test {

inline const core::FlightLab& lab() {
  static const core::FlightLab kLab;
  return kLab;
}

// Short hover flight (fast to simulate); deterministic in seed.
inline core::Flight hover_flight(double duration = 10.0, std::uint64_t seed = 1,
                                 double gust = 0.3) {
  core::FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, duration);
  s.wind.gust_stddev = gust;
  s.seed = seed;
  return lab().fly(s);
}

// Short line mission exercising acceleration and deceleration.
inline core::Flight line_flight(double duration = 12.0, std::uint64_t seed = 2) {
  core::FlightScenario s;
  s.mission = sim::Mission::line({0, 0, -10}, {15, 0, -10}, 3.0, duration);
  s.wind.gust_stddev = 0.3;
  s.seed = seed;
  return lab().fly(s);
}

}  // namespace sb::test
