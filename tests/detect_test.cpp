#include <gtest/gtest.h>

#include <cmath>

#include "detect/ks_test.hpp"
#include "detect/running_mean.hpp"
#include "detect/threshold.hpp"
#include "util/rng.hpp"

namespace sb::detect {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double std,
                                  std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> out(n);
  for (auto& x : out) x = rng.normal(mean, std);
  return out;
}

TEST(KsTest, AcceptsMatchingNormal) {
  const auto xs = normal_sample(500, 0.0, 1.0, 1);
  const auto r = ks_test_normal(xs, 0.0, 1.0);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_LT(r.statistic, 0.08);
}

TEST(KsTest, RejectsShiftedDistribution) {
  const auto xs = normal_sample(500, 1.0, 1.0, 2);
  const auto r = ks_test_normal(xs, 0.0, 1.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 0.3);
}

TEST(KsTest, RejectsWidenedDistribution) {
  // The DoS attack signature: same mean, inflated spread.
  const auto xs = normal_sample(500, 0.0, 3.0, 3);
  const auto r = ks_test_normal(xs, 0.0, 1.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, EmptyAndDegenerateInputsAreSafe) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(ks_test_normal(empty, 0, 1).statistic, 0.0);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(ks_test_normal(xs, 0, 0).statistic, 0.0);
}

TEST(KsTest, TwoSampleSameDistribution) {
  const auto a = normal_sample(400, 0.0, 1.0, 4);
  const auto b = normal_sample(400, 0.0, 1.0, 5);
  EXPECT_GT(ks_test_two_sample(a, b).p_value, 0.01);
}

TEST(KsTest, TwoSampleDifferentDistributions) {
  const auto a = normal_sample(400, 0.0, 1.0, 6);
  const auto b = normal_sample(400, 2.0, 1.0, 7);
  EXPECT_LT(ks_test_two_sample(a, b).p_value, 1e-9);
}

TEST(KsTest, CriticalValueShrinksWithN) {
  EXPECT_GT(ks_critical_value(50, 0.05), ks_critical_value(500, 0.05));
  EXPECT_GT(ks_critical_value(100, 0.01), ks_critical_value(100, 0.10));
}

TEST(KsTest, KolmogorovQBounds) {
  EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
  EXPECT_NEAR(kolmogorov_q(1.36), 0.05, 0.01);
  EXPECT_LT(kolmogorov_q(3.0), 1e-6);
}

TEST(RunningMean, CumulativeMean) {
  RunningMeanMonitor m;
  m.add(1.0);
  m.add(2.0);
  EXPECT_DOUBLE_EQ(m.add(3.0), 2.0);
  EXPECT_EQ(m.count(), 3u);
}

TEST(RunningMean, WindowedForgetsOldValues) {
  RunningMeanMonitor m{2};
  m.add(10.0);
  m.add(2.0);
  EXPECT_DOUBLE_EQ(m.add(4.0), 3.0);  // 10 has left the window
}

TEST(RunningMean, PeakTracksMaximum) {
  RunningMeanMonitor m{2};
  m.add(10.0);
  m.add(0.0);
  m.add(0.0);
  EXPECT_DOUBLE_EQ(m.peak(), 10.0);
  EXPECT_DOUBLE_EQ(m.current(), 0.0);
}

TEST(RunningMean, ResetClears) {
  RunningMeanMonitor m{3};
  m.add(5.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.current(), 0.0);
  EXPECT_DOUBLE_EQ(m.peak(), 0.0);
}

TEST(RunningVecMean, FluctuatingDirectionsCancel) {
  RunningVecMeanMonitor m{10};
  for (int i = 0; i < 20; ++i)
    m.add(Vec3{i % 2 == 0 ? 1.0 : -1.0, 0, 0});
  EXPECT_NEAR(m.current(), 0.0, 1e-12);
}

TEST(RunningVecMean, SustainedBiasSurvives) {
  RunningVecMeanMonitor m{10};
  Rng rng{8};
  double last = 0;
  for (int i = 0; i < 50; ++i)
    last = m.add(Vec3{0.8 + rng.normal(0, 0.3), rng.normal(0, 0.3), 0});
  EXPECT_NEAR(last, 0.8, 0.25);
}

TEST(RunningVecMean, WindowSlides) {
  RunningVecMeanMonitor m{2};
  m.add({4, 0, 0});
  m.add({2, 0, 0});
  EXPECT_DOUBLE_EQ(m.add({0, 0, 0}), 1.0);  // mean of (2,0,0),(0,0,0)
}

TEST(RunningMean, CompensatedMeanTracksExtendedPrecisionOverTenMillion) {
  // Regression for the compensated (Neumaier) accumulator.  The stream
  // interleaves large cancelling terms with mm-scale residuals whose bits
  // lie far below the large terms' ulp grid: a naive double running sum
  // loses those bits and drifts ~1e-11..1e-10 in the mean — past this
  // tolerance — while the compensated monitor stays within ~1e-20 of an
  // extended-precision reference.  (Data where all terms share one binade
  // grid keeps even naive summation exact and pins nothing; and a two-pass
  // residual reference re-subtracts the same mean from grid-aligned terms,
  // accumulating correlated rounding past 1e-12 itself — hence the
  // single-pass long double reference.)
  constexpr std::size_t kN = 10'000'000;
  constexpr std::uint64_t kSeed = 20240807;
  const auto sample = [](std::size_t i, Rng& rng) {
    switch (i % 4) {
      case 0: return 1e10 + rng.normal(0.0, 1.0);
      case 1: return rng.normal(0.0, 1e-3);
      case 2: return -1e10 + rng.normal(0.0, 1.0);
      default: return rng.normal(0.0, 1e-3);
    }
  };
  RunningMeanMonitor m;
  double mean = 0.0;
  {
    Rng rng{kSeed};
    for (std::size_t i = 0; i < kN; ++i) mean = m.add(sample(i, rng));
  }
  // Re-seeding replays the exact stream without holding 80 MB of samples.
  long double ref_sum = 0.0L;
  {
    Rng rng{kSeed};
    for (std::size_t i = 0; i < kN; ++i) ref_sum += sample(i, rng);
  }
  const double ref = static_cast<double>(ref_sum / static_cast<long double>(kN));
  EXPECT_EQ(m.count(), kN);
  EXPECT_NEAR(mean, ref, 1e-12);
}

TEST(RunningMean, WindowedCompensationDoesNotDriftOverLongStreams) {
  // Windowed mode adds AND subtracts every sample once; with a large common
  // offset, uncompensated subtraction residue accumulates linearly in stream
  // length.  After 10^6 slides the reported mean must match a fresh
  // extended-precision sum of the window's actual contents.
  constexpr std::size_t kWindow = 1000;
  constexpr std::size_t kN = 1'000'000;
  Rng rng{31};
  std::vector<double> xs(kN);
  for (auto& x : xs) x = 1e9 + rng.normal(0.0, 1.0);
  RunningMeanMonitor m{kWindow};
  double mean = 0.0;
  for (double x : xs) mean = m.add(x);
  long double sum = 0.0L;
  for (std::size_t i = kN - kWindow; i < kN; ++i) sum += xs[i];
  const double ref =
      static_cast<double>(sum / static_cast<long double>(kWindow));
  // Both sit near 1e9 (ulp ~1.2e-7); subtracting the offset exposes the
  // small-signal part the compensation protects.
  EXPECT_NEAR(mean - 1e9, ref - 1e9, 1e-6);
}

TEST(Threshold, CalibrateUsesMaxAfterOutlierRemoval) {
  std::vector<double> peaks(50, 1.0);
  peaks[10] = 1.2;
  peaks[20] = 100.0;  // outlier
  ThresholdConfig cfg;
  cfg.margin = 1.0;
  const double th = calibrate_threshold(peaks, cfg);
  EXPECT_NEAR(th, 1.2, 1e-9);
}

TEST(Threshold, MarginApplied) {
  const std::vector<double> peaks{1.0, 2.0};
  ThresholdConfig cfg;
  cfg.margin = 1.5;
  cfg.outlier_sigma = 10.0;
  EXPECT_NEAR(calibrate_threshold(peaks, cfg), 3.0, 1e-9);
}

TEST(Threshold, EmptyInputGivesZero) {
  EXPECT_DOUBLE_EQ(calibrate_threshold({}, {}), 0.0);
}

TEST(Threshold, FitNormal) {
  const auto xs = normal_sample(20000, 2.0, 0.5, 9);
  const auto fit = fit_normal(xs);
  EXPECT_NEAR(fit.mean, 2.0, 0.02);
  EXPECT_NEAR(fit.stddev, 0.5, 0.02);
}

TEST(Threshold, FitNormalDegenerateHasPositiveStd) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_GT(fit_normal(xs).stddev, 0.0);
}

class KsPowerSweep : public ::testing::TestWithParam<double> {};

// Property: detection power grows monotonically-ish with the shift; any
// shift >= 0.5 sigma on 300 samples must be detected at alpha = 1e-3.
TEST_P(KsPowerSweep, DetectsShiftsAboveHalfSigma) {
  const double shift = GetParam();
  const auto xs = normal_sample(300, shift, 1.0, 11);
  const auto r = ks_test_normal(xs, 0.0, 1.0);
  if (shift >= 0.5) EXPECT_LT(r.p_value, 1e-3) << "shift " << shift;
  if (shift == 0.0) EXPECT_GT(r.p_value, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Shifts, KsPowerSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace sb::detect
