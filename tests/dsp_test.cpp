#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/biquad.hpp"
#include "dsp/features.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrogram.hpp"
#include "dsp/window.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace sb::dsp {
namespace {

struct SimdBackendGuard {
  util::SimdBackend saved = util::simd_backend();
  explicit SimdBackendGuard(util::SimdBackend b) { util::set_simd_backend(b); }
  ~SimdBackendGuard() { util::set_simd_backend(saved); }
};

std::vector<double> sine(double freq, double fs, std::size_t n, double amp = 1.0) {
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i)
    s[i] = amp * std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(i) / fs);
  return s;
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(100);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(64);
  data[0] = 1.0;
  fft(data);
  for (const auto& x : data) EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
}

TEST(Fft, RoundTrip) {
  Rng rng{3};
  std::vector<std::complex<double>> data(128);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng{4};
  std::vector<std::complex<double>> data(256);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.normal(), 0.0};
    time_energy += std::norm(x);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-6 * time_energy);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, MagnitudeSpectrumFindsTone) {
  const double fs = 16000.0;
  const auto s = sine(1000.0, fs, 1024, 2.0);
  const auto mags = magnitude_spectrum(s);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < mags.size(); ++k)
    if (mags[k] > mags[peak]) peak = k;
  EXPECT_NEAR(bin_frequency(peak, 1024, fs), 1000.0, fs / 1024.0);
  EXPECT_NEAR(mags[peak], 2.0, 0.3);
}

TEST(Fft, GoertzelMatchesFftAtBin) {
  const double fs = 16000.0;
  // Bin-centred frequency so there is no leakage.
  const double f = 32.0 * fs / 1024.0;
  const auto s = sine(f, fs, 1024, 1.5);
  EXPECT_NEAR(goertzel(s, f, fs), 1.5, 0.05);
  EXPECT_NEAR(goertzel(s, f * 2, fs), 0.0, 0.05);
}

TEST(Fft, F32TracksDoubleTransform) {
  Rng rng{11};
  const std::size_t n = 1024;
  std::vector<std::complex<double>> ref(n);
  std::vector<std::complex<float>> f32(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = rng.normal(), im = rng.normal();
    ref[i] = {re, im};
    f32[i] = {static_cast<float>(re), static_cast<float>(im)};
  }
  fft(ref);
  fft_inplace_f32(f32);
  double peak = 0.0;
  for (const auto& x : ref) peak = std::max(peak, std::abs(x));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(f32[i].real(), ref[i].real(), 1e-5 * peak);
    EXPECT_NEAR(f32[i].imag(), ref[i].imag(), 1e-5 * peak);
  }
}

TEST(Fft, F32RejectsNonPowerOfTwo) {
  std::vector<std::complex<float>> data(100);
  EXPECT_THROW(fft_inplace_f32(data), std::invalid_argument);
}

TEST(Fft, PlanCacheHitsOnWarmSize) {
  auto& hits = sb::obs::Registry::instance().counter("fft.plan_hits");
  // First transform builds (or reuses) the 512-point plan; the second must
  // be a cache hit — a rebuild per call would defeat the plan cache.
  std::vector<std::complex<double>> a(512, {1.0, 0.0});
  fft(a);
  const auto before = hits.value();
  std::vector<std::complex<double>> b(512, {0.5, 0.0});
  fft(b);
  EXPECT_GT(hits.value(), before);
}

TEST(Window, HannEndpointsAndPeak) {
  const auto w = make_window(WindowType::kHann, 64);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 0.01);
}

TEST(Window, RectIsUnity) {
  const auto w = make_window(WindowType::kRect, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, SumMatchesApplied) {
  const auto w = make_window(WindowType::kHamming, 128);
  EXPECT_NEAR(window_sum(w), 0.54 * 128, 1.0);
}

TEST(Window, ApplyMismatchThrows) {
  std::vector<double> frame(10);
  const auto w = make_window(WindowType::kHann, 8);
  EXPECT_THROW(apply_window(frame, w), std::invalid_argument);
}

class WindowTypeTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowTypeTest, NonNegativeAndBounded) {
  const auto w = make_window(GetParam(), 101);
  for (double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowTypeTest,
                         ::testing::Values(WindowType::kRect, WindowType::kHann,
                                           WindowType::kHamming,
                                           WindowType::kBlackman));

TEST(Stft, FrameCount) {
  StftConfig cfg;
  cfg.frame_size = 256;
  cfg.hop_size = 128;
  std::vector<double> signal(1024, 0.0);
  const auto spec = stft(signal, cfg);
  EXPECT_EQ(spec.num_frames, (1024 - 256) / 128 + 1);
  EXPECT_EQ(spec.num_bins, 129u);
}

TEST(Stft, ShortSignalYieldsNoFrames) {
  StftConfig cfg;
  cfg.frame_size = 256;
  std::vector<double> signal(100, 0.0);
  EXPECT_EQ(stft(signal, cfg).num_frames, 0u);
}

TEST(Stft, RequiresPowerOfTwoFrame) {
  StftConfig cfg;
  cfg.frame_size = 300;
  std::vector<double> signal(1024, 0.0);
  EXPECT_THROW(stft(signal, cfg), std::invalid_argument);
}

TEST(Stft, ToneAppearsInCorrectBand) {
  StftConfig cfg;
  cfg.frame_size = 1024;
  cfg.hop_size = 512;
  cfg.sample_rate = 16000.0;
  const auto s = sine(2500.0, cfg.sample_rate, 8000, 1.0);
  const auto spec = stft(s, cfg);
  const auto band = band_amplitude_over_time(spec, 2400.0, 2600.0);
  const auto off_band = band_amplitude_over_time(spec, 5000.0, 5200.0);
  ASSERT_FALSE(band.empty());
  EXPECT_GT(band[0], 10.0 * (off_band[0] + 1e-9));
}

TEST(Stft, AmplitudeTracksToneLevel) {
  StftConfig cfg;
  cfg.frame_size = 1024;
  cfg.hop_size = 512;
  cfg.sample_rate = 16000.0;
  auto quiet = sine(1000.0, cfg.sample_rate, 4096, 0.5);
  auto loud = sine(1000.0, cfg.sample_rate, 4096, 1.5);
  const auto bq = band_amplitude_over_time(stft(quiet, cfg), 900, 1100);
  const auto bl = band_amplitude_over_time(stft(loud, cfg), 900, 1100);
  EXPECT_NEAR(bl[0] / bq[0], 3.0, 0.2);
}

TEST(Stft, FastF32TracksExactPipeline) {
  StftConfig cfg;
  cfg.frame_size = 1024;
  cfg.hop_size = 512;
  cfg.sample_rate = 16000.0;
  Rng rng{13};
  auto s = sine(2500.0, cfg.sample_rate, 8000, 1.0);
  for (auto& v : s) v += rng.normal(0.0, 0.05);
  const auto exact = stft(s, cfg);
  cfg.fast_f32 = true;
  const auto fast = stft(s, cfg);
  ASSERT_EQ(fast.num_frames, exact.num_frames);
  ASSERT_EQ(fast.num_bins, exact.num_bins);
  double peak = 0.0;
  for (double m : exact.mags) peak = std::max(peak, m);
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < exact.mags.size(); ++i)
    EXPECT_NEAR(fast.mags[i], exact.mags[i], 1e-5 * peak) << "cell " << i;
}

TEST(Stft, FastF32ScalarAndVectorBackendsAreBitwiseIdentical) {
  StftConfig cfg;
  cfg.frame_size = 512;
  cfg.hop_size = 256;
  cfg.fast_f32 = true;
  Rng rng{14};
  std::vector<double> s(4096);
  for (auto& v : s) v = rng.normal(0.0, 0.3);
  Spectrogram vec, sca;
  {
    SimdBackendGuard g{util::SimdBackend::kVector};
    vec = stft(s, cfg);
  }
  {
    SimdBackendGuard g{util::SimdBackend::kScalar};
    sca = stft(s, cfg);
  }
  ASSERT_EQ(vec.mags.size(), sca.mags.size());
  for (std::size_t i = 0; i < vec.mags.size(); ++i)
    ASSERT_EQ(vec.mags[i], sca.mags[i]) << "cell " << i;
}

TEST(Biquad, LowPassAttenuatesHighFrequency) {
  Biquad lp = Biquad::low_pass(1000.0, 16000.0);
  EXPECT_NEAR(lp.magnitude_at(100.0, 16000.0), 1.0, 0.05);
  EXPECT_LT(lp.magnitude_at(6000.0, 16000.0), 0.05);
}

TEST(Biquad, HighPassMirrorsLowPass) {
  Biquad hp = Biquad::high_pass(1000.0, 16000.0);
  EXPECT_LT(hp.magnitude_at(50.0, 16000.0), 0.01);
  EXPECT_NEAR(hp.magnitude_at(7000.0, 16000.0), 1.0, 0.05);
}

TEST(Biquad, BandPassPeaksAtCenter) {
  Biquad bp = Biquad::band_pass(2500.0, 16000.0, 3.0);
  const double at_center = bp.magnitude_at(2500.0, 16000.0);
  EXPECT_GT(at_center, bp.magnitude_at(1000.0, 16000.0) * 5.0);
  EXPECT_GT(at_center, bp.magnitude_at(5000.0, 16000.0) * 5.0);
}

TEST(Biquad, NotchNullsCenter) {
  Biquad n = Biquad::notch(2500.0, 16000.0, 5.0);
  EXPECT_LT(n.magnitude_at(2500.0, 16000.0), 0.05);
  EXPECT_NEAR(n.magnitude_at(100.0, 16000.0), 1.0, 0.05);
}

TEST(Biquad, TimeDomainMatchesMagnitudeResponse) {
  Biquad lp = Biquad::low_pass(2000.0, 16000.0);
  const auto s = sine(5500.0, 16000.0, 4000);
  const auto y = lp.process(s);
  // Steady-state amplitude after the transient.
  double peak = 0.0;
  for (std::size_t i = 2000; i < y.size(); ++i) peak = std::max(peak, std::abs(y[i]));
  EXPECT_NEAR(peak, lp.magnitude_at(5500.0, 16000.0), 0.02);
}

TEST(Biquad, ResetClearsState) {
  Biquad lp = Biquad::low_pass(2000.0, 16000.0);
  lp.process(1.0);
  lp.process(1.0);
  lp.reset();
  Biquad fresh = Biquad::low_pass(2000.0, 16000.0);
  EXPECT_DOUBLE_EQ(lp.process(0.5), fresh.process(0.5));
}

TEST(BiquadCascade, SteeperThanSingleSection) {
  Biquad one = Biquad::low_pass(1000.0, 16000.0);
  BiquadCascade two = BiquadCascade::low_pass(1000.0, 16000.0, 2);
  const auto s = sine(4000.0, 16000.0, 4000);
  Biquad one_copy = one;
  const auto y1 = one_copy.process(s);
  const auto y2 = two.process(s);
  double p1 = 0.0, p2 = 0.0;
  for (std::size_t i = 2000; i < s.size(); ++i) {
    p1 = std::max(p1, std::abs(y1[i]));
    p2 = std::max(p2, std::abs(y2[i]));
  }
  EXPECT_LT(p2, p1 * 0.5);
}

TEST(Features, GroupBandsCoverExpectedFrequencies) {
  BandFeatureConfig cfg;  // 32 bands to 6 kHz -> 187.5 Hz per band
  // 200 Hz -> band 1 -> blade passing.
  EXPECT_EQ(group_of_band(1, cfg), FreqGroup::kBladePassing);
  // 2500 Hz -> band 13 -> mechanical.
  EXPECT_EQ(group_of_band(13, cfg), FreqGroup::kMechanical);
  // 5500 Hz -> band 29 -> aerodynamic.
  EXPECT_EQ(group_of_band(29, cfg), FreqGroup::kAerodynamic);
  // 3800 Hz -> none of the named groups.
  EXPECT_EQ(group_of_band(20, cfg), FreqGroup::kOther);
}

TEST(Features, BandFeatureLayout) {
  StftConfig scfg;
  scfg.frame_size = 1024;
  scfg.hop_size = 512;
  const auto s = sine(2500.0, 16000.0, 4096);
  const auto spec = stft(s, scfg);
  BandFeatureConfig cfg;
  const auto feats = band_features(spec, cfg);
  EXPECT_EQ(feats.size(), spec.num_frames * cfg.bands_per_frame);
}

TEST(Features, ToneRaisesItsBandOnly) {
  StftConfig scfg;
  scfg.frame_size = 1024;
  scfg.hop_size = 512;
  const auto s = sine(2500.0, 16000.0, 4096, 1.0);
  const auto spec = stft(s, scfg);
  BandFeatureConfig cfg;
  const auto feats = band_features(spec, cfg);
  // Band 13 holds 2500 Hz; band 5 holds ~1 kHz.
  EXPECT_GT(feats[13], feats[5] + 3.0);  // log scale: >3 nats apart
}

TEST(Features, RemoveGroupSilencesItsBands) {
  BandFeatureConfig cfg;
  std::vector<double> feats(2 * cfg.bands_per_frame, 1.0);
  remove_group(feats, cfg.bands_per_frame, FreqGroup::kAerodynamic, cfg);
  bool any_removed = false;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    const auto band = i % cfg.bands_per_frame;
    if (group_of_band(band, cfg) == FreqGroup::kAerodynamic) {
      EXPECT_DOUBLE_EQ(feats[i], kSilenceFeature);
      any_removed = true;
    } else {
      EXPECT_DOUBLE_EQ(feats[i], 1.0);
    }
  }
  EXPECT_TRUE(any_removed);
}

TEST(Features, RemoveGroupRejectsBadLayout) {
  BandFeatureConfig cfg;
  std::vector<double> feats(cfg.bands_per_frame + 1, 1.0);
  EXPECT_THROW(remove_group(feats, cfg.bands_per_frame, FreqGroup::kOther, cfg),
               std::invalid_argument);
}

TEST(Features, PipelineCutoffIs6kHz) { EXPECT_DOUBLE_EQ(kPipelineCutoffHz, 6000.0); }

class FftSizeSweep : public ::testing::TestWithParam<std::size_t> {};

// Property: FFT/IFFT round-trips at every power-of-two size.
TEST_P(FftSizeSweep, RoundTripAtAllSizes) {
  const std::size_t n = GetParam();
  Rng rng{n};
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeSweep,
                         ::testing::Values(2, 8, 64, 512, 4096));

class ToneFrequencySweep : public ::testing::TestWithParam<double> {};

// Property: the magnitude spectrum localizes a tone at any in-band
// frequency to within one bin.
TEST_P(ToneFrequencySweep, PeakWithinOneBin) {
  const double f = GetParam();
  const double fs = 16000.0;
  const auto s = sine(f, fs, 4096);
  const auto mags = magnitude_spectrum(s);
  std::size_t peak = 1;
  for (std::size_t k = 1; k < mags.size(); ++k)
    if (mags[k] > mags[peak]) peak = k;
  EXPECT_NEAR(bin_frequency(peak, 4096, fs), f, fs / 4096.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AcrossBand, ToneFrequencySweep,
                         ::testing::Values(200.0, 1000.0, 2500.0, 5500.0, 7000.0));

class LowPassCutoffSweep : public ::testing::TestWithParam<double> {};

// Property: any RBJ low-pass passes DC and attenuates 4x its cutoff.
TEST_P(LowPassCutoffSweep, PassbandAndStopband) {
  const double cutoff = GetParam();
  Biquad lp = Biquad::low_pass(cutoff, 16000.0);
  EXPECT_NEAR(lp.magnitude_at(cutoff / 20.0, 16000.0), 1.0, 0.05);
  EXPECT_LT(lp.magnitude_at(std::min(cutoff * 4.0, 7900.0), 16000.0), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, LowPassCutoffSweep,
                         ::testing::Values(250.0, 1000.0, 1900.0));

}  // namespace
}  // namespace sb::dsp
