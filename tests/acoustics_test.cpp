#include <gtest/gtest.h>

#include <cmath>

#include "acoustics/propagation.hpp"
#include "acoustics/rotor_sound.hpp"
#include "acoustics/synthesizer.hpp"
#include "core/flight_lab.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectrogram.hpp"
#include "util/checksum.hpp"
#include "util/stats.hpp"

namespace sb::acoustics {
namespace {

constexpr double kFs = 16000.0;

std::vector<double> render(RotorSound& synth, double omega, std::size_t n) {
  std::vector<double> out(n);
  for (auto& x : out) x = synth.sample(omega);
  return out;
}

double band_rms(std::span<const double> signal, double lo, double hi) {
  dsp::StftConfig cfg;
  cfg.frame_size = 2048;
  cfg.hop_size = 1024;
  cfg.sample_rate = kFs;
  const auto spec = dsp::stft(signal, cfg);
  const auto amps = dsp::band_amplitude_over_time(spec, lo, hi);
  double s = 0;
  for (double a : amps) s += a * a;
  return std::sqrt(s / static_cast<double>(amps.size()));
}

TEST(RotorSound, EmitsAllThreeFrequencyGroups) {
  const double hover = sim::QuadrotorParams{}.hover_omega();
  RotorSound synth{{}, kFs, hover, Rng{1}};
  const auto sig = render(synth, hover, 16000);
  // Each group's characteristic region is compared against a quiet
  // neighbouring region of the same width.  (The aerodynamic band-pass has
  // a broad skirt, so the 3.3-4.3 kHz gap is not silent; the reference
  // regions below sit clear of it.)
  const double blade = band_rms(sig, 100, 600);
  const double mech = band_rms(sig, 2300, 2700);
  const double aero = band_rms(sig, 4800, 5800);
  const double ref_low = band_rms(sig, 900, 1400);    // above blade harmonics
  const double ref_mid = band_rms(sig, 1500, 1900);   // below the mech tone
  EXPECT_GT(blade, 2.0 * ref_low);
  EXPECT_GT(mech, 2.0 * ref_mid);
  EXPECT_GT(aero, 2.0 * ref_mid);
}

TEST(RotorSound, AmplitudeRisesWithRotorSpeed) {
  const double hover = sim::QuadrotorParams{}.hover_omega();
  RotorSound slow{{}, kFs, hover, Rng{2}};
  RotorSound fast{{}, kFs, hover, Rng{2}};
  const auto s_slow = render(slow, hover * 0.9, 16000);
  const auto s_fast = render(fast, hover * 1.1, 16000);
  EXPECT_GT(band_rms(s_fast, 4500, 6000), 1.5 * band_rms(s_slow, 4500, 6000));
  EXPECT_GT(band_rms(s_fast, 100, 600), 1.2 * band_rms(s_slow, 100, 600));
}

TEST(RotorSound, PitchTracksRotorSpeed) {
  // The mechanical tone frequency scales with rotation rate.
  const double hover = sim::QuadrotorParams{}.hover_omega();
  RotorSoundConfig cfg;
  RotorSound synth{cfg, kFs, hover, Rng{3}};
  const auto sig = render(synth, hover * 1.1, 32768);
  const auto mags = dsp::magnitude_spectrum(sig);
  // Expected tone: mech_ratio * rot_hz * 1.1
  const double rot_hz = hover / (2.0 * M_PI);
  const double expect_hz = cfg.mech_ratio * rot_hz * 1.1;
  std::size_t peak = 0;
  const auto lo = static_cast<std::size_t>((expect_hz - 400) / kFs * 32768);
  const auto hi = static_cast<std::size_t>((expect_hz + 400) / kFs * 32768);
  for (std::size_t k = lo; k < hi; ++k)
    if (mags[k] > mags[peak]) peak = k;
  EXPECT_NEAR(dsp::bin_frequency(peak, 32768, kFs), expect_hz, 60.0);
}

TEST(RotorSound, DetuneShiftsTone) {
  const double hover = sim::QuadrotorParams{}.hover_omega();
  RotorSoundConfig a, b;
  b.detune = 0.1;
  RotorSound sa{a, kFs, hover, Rng{4}};
  RotorSound sb{b, kFs, hover, Rng{4}};
  const auto siga = render(sa, hover, 32768);
  const auto sigb = render(sb, hover, 32768);
  const double rot_hz = hover / (2.0 * M_PI);
  const double fa = a.mech_ratio * rot_hz;
  const double fb = a.mech_ratio * 1.1 * rot_hz;
  EXPECT_GT(dsp::goertzel(siga, fa, kFs), 3.0 * dsp::goertzel(siga, fb, kFs));
  EXPECT_GT(dsp::goertzel(sigb, fb, kFs), 3.0 * dsp::goertzel(sigb, fa, kFs));
}

TEST(Propagation, MixAppliesGains) {
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  std::array<std::vector<double>, sim::kNumRotors> rotors;
  // Only rotor 0 active, constant signal.
  for (auto& r : rotors) r.assign(200, 0.0);
  std::fill(rotors[0].begin(), rotors[0].end(), 1.0);
  Rng rng{5};
  const auto audio = mix_to_mics(rotors, 100, geom, kFs, 0.0, rng);
  for (int m = 0; m < sensors::kNumMics; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    EXPECT_NEAR(audio.channels[mi].back(), geom.gain[mi][0], 1e-12);
  }
}

TEST(Propagation, MixAppliesDelays) {
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  std::array<std::vector<double>, sim::kNumRotors> rotors;
  for (auto& r : rotors) r.assign(120, 0.0);
  rotors[0][100] = 1.0;  // impulse exactly at the window start (lead = 100)
  Rng rng{6};
  const auto audio = mix_to_mics(rotors, 100, geom, kFs, 0.0, rng);
  for (int m = 0; m < sensors::kNumMics; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    const auto expected_delay = static_cast<std::size_t>(
        std::llround(geom.delay_s[mi][0] * kFs));
    // The impulse lands `expected_delay` samples into the output.
    ASSERT_LT(expected_delay, audio.channels[mi].size());
    EXPECT_NEAR(audio.channels[mi][expected_delay], geom.gain[mi][0], 1e-12);
  }
}

TEST(Propagation, InsufficientLeadThrows) {
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  std::array<std::vector<double>, sim::kNumRotors> rotors;
  for (auto& r : rotors) r.assign(50, 0.0);
  Rng rng{7};
  EXPECT_THROW(mix_to_mics(rotors, 0, geom, kFs, 0.0, rng), std::invalid_argument);
}

TEST(Propagation, FlowDirectivityBreaksChannelBalance) {
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  std::array<std::vector<double>, sim::kNumRotors> rotors;
  for (auto& r : rotors) r.assign(300, 1.0);
  Rng rng{8};
  const auto still = mix_to_mics(rotors, 100, geom, kFs, 0.0, rng);
  std::vector<Vec3> flow(200, Vec3{5, 0, 0});
  Rng rng2{8};
  const auto moving = mix_to_mics(rotors, 100, geom, kFs, 0.0, rng2, flow, 0.1);
  double max_change = 0.0;
  for (int m = 0; m < sensors::kNumMics; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    max_change = std::max(max_change,
                          std::abs(moving.channels[mi].back() - still.channels[mi].back()));
  }
  EXPECT_GT(max_change, 0.01);
}

TEST(Propagation, ExternalAttenuationMatchesPaper) {
  // The paper measured ~46% of on-frame intensity at 0.5 m (§IV-D); the
  // rotor-to-mic distance is ~0.2 m.
  const double on_frame = external_attenuation(0.2);
  const double at_half_meter = external_attenuation(0.5);
  EXPECT_NEAR(at_half_meter / on_frame, 0.46, 0.08);
}

TEST(Propagation, ExternalSourceAddsDelayedEnergy) {
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  MultiChannelAudio audio;
  audio.sample_rate = kFs;
  for (auto& ch : audio.channels) ch.assign(200, 0.0);
  std::vector<double> source(200, 1.0);
  add_external_source(audio, source, Vec3{0, 0, -0.5}, geom);
  for (const auto& ch : audio.channels) {
    EXPECT_NEAR(ch.front(), 0.0, 1e-12);  // before the propagation delay
    EXPECT_GT(ch.back(), 0.01);
  }
}

TEST(Synthesizer, DeterministicPerWindow) {
  sim::QuadrotorParams quad;
  AudioSynthesizer synth{{}, quad, 42};
  sim::FlightLog log;
  log.rates = sim::SimRates{};
  const double w = quad.hover_omega();
  for (int i = 0; i < 2000; ++i) {
    log.t.push_back(i * log.rates.physics_dt());
    log.rotor_omega.push_back({w, w, w, w});
    log.true_euler.push_back({});
    log.true_vel.push_back({});
  }
  const auto a = synth.synthesize(log, 1.0, 1.5);
  const auto b = synth.synthesize(log, 1.0, 1.5);
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (std::size_t i = 0; i < a.num_samples(); ++i)
    EXPECT_DOUBLE_EQ(a.channels[0][i], b.channels[0][i]);
}

TEST(Synthesizer, DifferentSeedsDiffer) {
  sim::QuadrotorParams quad;
  AudioSynthesizer s1{{}, quad, 42};
  AudioSynthesizer s2{{}, quad, 43};
  sim::FlightLog log;
  log.rates = sim::SimRates{};
  const double w = quad.hover_omega();
  for (int i = 0; i < 1000; ++i) {
    log.t.push_back(i * log.rates.physics_dt());
    log.rotor_omega.push_back({w, w, w, w});
    log.true_euler.push_back({});
    log.true_vel.push_back({});
  }
  const auto a = s1.synthesize(log, 0.5, 1.0);
  const auto b = s2.synthesize(log, 0.5, 1.0);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.num_samples(); ++i)
    diff += std::abs(a.channels[0][i] - b.channels[0][i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Synthesizer, WindowLengthMatchesRequest) {
  sim::QuadrotorParams quad;
  AudioSynthesizer synth{{}, quad, 1};
  sim::FlightLog log;
  log.rates = sim::SimRates{};
  const double w = quad.hover_omega();
  for (int i = 0; i < 2000; ++i) {
    log.t.push_back(i * log.rates.physics_dt());
    log.rotor_omega.push_back({w, w, w, w});
    log.true_euler.push_back({});
    log.true_vel.push_back({});
  }
  const auto audio = synth.synthesize(log, 0.0, 0.5);
  EXPECT_EQ(audio.num_samples(), 8000u);
}

TEST(Synthesizer, FasterRotorsAreLouder) {
  sim::QuadrotorParams quad;
  AudioSynthesizer synth{{}, quad, 9};
  const double w = quad.hover_omega();
  auto make_log = [&](double scale) {
    sim::FlightLog log;
    log.rates = sim::SimRates{};
    for (int i = 0; i < 1000; ++i) {
      log.t.push_back(i * log.rates.physics_dt());
      log.rotor_omega.push_back({w * scale, w * scale, w * scale, w * scale});
      log.true_euler.push_back({});
      log.true_vel.push_back({});
    }
    return log;
  };
  const auto slow = synth.synthesize(make_log(0.9), 0.5, 1.5);
  const auto fast = synth.synthesize(make_log(1.1), 0.5, 1.5);
  double e_slow = 0, e_fast = 0;
  for (double x : slow.channels[0]) e_slow += x * x;
  for (double x : fast.channels[0]) e_fast += x * x;
  EXPECT_GT(e_fast, 1.5 * e_slow);
}

TEST(MotorUnitDetune, DeterministicDistinctAndBounded) {
  const double spread = 0.08;
  for (int r = 0; r < 8; ++r) {
    const double d = motor_unit_detune(0xB700, r, spread);
    EXPECT_DOUBLE_EQ(d, motor_unit_detune(0xB700, r, spread));  // pure function
    EXPECT_LE(std::abs(d), spread);
  }
  // Distinct across rotors of one unit and across units.
  EXPECT_NE(motor_unit_detune(0xB700, 0, spread), motor_unit_detune(0xB700, 1, spread));
  EXPECT_NE(motor_unit_detune(0xB700, 0, spread), motor_unit_detune(0xC900, 0, spread));
  // Spread scales the same unit draw linearly.
  EXPECT_DOUBLE_EQ(motor_unit_detune(7, 3, 0.16), 2.0 * motor_unit_detune(7, 3, 0.08));
}

sim::FlightLog hover_log(const sim::QuadrotorParams& quad, int steps) {
  sim::FlightLog log;
  log.rates = sim::SimRates{};
  const double w = quad.hover_omega();
  for (int i = 0; i < steps; ++i) {
    log.t.push_back(i * log.rates.physics_dt());
    log.rotor_omega.push_back({w, w, w, w});
    log.true_euler.push_back({});
    log.true_vel.push_back({});
  }
  return log;
}

TEST(Synthesizer, ExplicitLegacyDetuneTableIsBitwiseIdentical) {
  // An empty rotor_detune vector means "the measured X500 table"; spelling
  // that table out must produce the identical waveform, sample for sample.
  sim::QuadrotorParams quad;
  const auto log = hover_log(quad, 2000);
  SynthesizerConfig explicit_cfg;
  explicit_cfg.rotor_detune = {-0.10, -0.035, 0.035, 0.10};
  AudioSynthesizer legacy{{}, quad, 42};
  AudioSynthesizer spelled{explicit_cfg, quad, 42};
  const auto a = legacy.synthesize(log, 1.0, 1.5);
  const auto b = spelled.synthesize(log, 1.0, 1.5);
  ASSERT_EQ(a.num_samples(), b.num_samples());
  for (std::size_t m = 0; m < a.channels.size(); ++m)
    for (std::size_t i = 0; i < a.num_samples(); ++i)
      ASSERT_EQ(a.channels[m][i], b.channels[m][i]);
}

TEST(Synthesizer, GroundReflectionOffIsBitwiseIdentical) {
  // Either field at zero gates the image source off entirely — the output
  // must be bit-identical to the default free-field path.
  sim::QuadrotorParams quad;
  const auto log = hover_log(quad, 2000);
  SynthesizerConfig altitude_only;
  altitude_only.ground_altitude_m = 2.5;  // coefficient still 0
  AudioSynthesizer base{{}, quad, 42};
  AudioSynthesizer gated{altitude_only, quad, 42};
  const auto a = base.synthesize(log, 1.0, 1.5);
  const auto b = gated.synthesize(log, 1.0, 1.5);
  for (std::size_t m = 0; m < a.channels.size(); ++m)
    for (std::size_t i = 0; i < a.num_samples(); ++i)
      ASSERT_EQ(a.channels[m][i], b.channels[m][i]);
}

TEST(Synthesizer, GroundReflectionChangesWaveform) {
  sim::QuadrotorParams quad;
  const auto log = hover_log(quad, 2000);
  SynthesizerConfig ground_cfg;
  ground_cfg.ground_reflect = 0.7;
  ground_cfg.ground_altitude_m = 2.5;
  AudioSynthesizer base{{}, quad, 42};
  AudioSynthesizer grounded{ground_cfg, quad, 42};
  const auto a = base.synthesize(log, 1.0, 1.5);
  const auto b = grounded.synthesize(log, 1.0, 1.5);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.num_samples(); ++i)
    diff += std::abs(a.channels[0][i] - b.channels[0][i]);
  EXPECT_GT(diff, 0.1);
}

// Golden pin: the default quad's synthesized audio window is bitwise
// identical to the pre-scenario-refactor build (CRC captured before the
// synthesizer grew runtime rotor counts, detune vectors and ground
// reflection).  See sim_test's GoldenQuad for the flight-side pins.
TEST(GoldenQuad, AudioBitwiseIdenticalToSeed) {
  core::FlightLab lab;
  core::FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 10.0);
  s.wind.mean = {1.0, 0.5, 0.0};
  s.wind.gust_stddev = 0.4;
  s.seed = 42;
  const auto flight = lab.fly(s);
  const auto synth = lab.synthesizer(flight);
  const auto audio = synth.synthesize(flight.log, 3.0, 4.0);
  std::uint32_t crc = 0;
  for (const auto& ch : audio.channels)
    for (double x : ch) crc = util::crc32(&x, sizeof x, crc);
  EXPECT_EQ(crc, 0x950d243bu);
}

}  // namespace
}  // namespace sb::acoustics
