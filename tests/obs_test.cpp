// Tier-1 coverage for the observability subsystem:
//   * JSON serializer: escaping, non-finite handling, round-trip precision,
//     and the structural validator the other tests lean on,
//   * metrics registry: counter/gauge semantics and histogram percentiles
//     pinned against util::stats (the interpolation is intentionally
//     duplicated in obs, which sits below util in the link order),
//   * trace spans: nesting across parallel_for workers, the exclusive
//     stage-accrual rule, Chrome JSON well-formedness,
//   * the disabled fast path: a span with tracing off must not allocate,
//   * the no-perturbation guarantee: seeded training is bit-identical with
//     tracing on or off, at 1 or 4 threads,
//   * RCA decision-trace JSONL: every line is one well-formed JSON object.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <vector>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/decision_trace.hpp"
#include "io/decision_trace.hpp"
#include "ml/models.hpp"
#include "ml/trainer.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

// Global allocation counter for the zero-allocation test.  Replacing only
// the plain (unaligned) forms is sufficient: the spans under test never use
// aligned or nothrow new.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sb {
namespace {

struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) { util::ThreadPool::set_threads(n); }
  ~ThreadCountGuard() { util::ThreadPool::set_threads(0); }
};

// Restores the trace switch and drops any events a test recorded.
struct TraceGuard {
  explicit TraceGuard(bool on) : was(obs::enabled()) { obs::set_enabled(on); }
  ~TraceGuard() {
    obs::Trace::instance().clear();
    obs::set_enabled(was);
  }
  bool was;
};

// ---------------------------------------------------------------------------
// JSON serializer.

TEST(Json, StringEscaping) {
  std::string out;
  // "\x01" is split from "f" so the greedy hex escape doesn't swallow the 'f'.
  obs::append_json_string(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  EXPECT_TRUE(obs::json_valid(out));
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  std::string nan_out, inf_out;
  obs::append_json_number(nan_out, std::numeric_limits<double>::quiet_NaN());
  obs::append_json_number(inf_out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(nan_out, "null");
  EXPECT_EQ(inf_out, "null");
}

TEST(Json, NumbersRoundTripExactly) {
  for (double v : {0.1, 1.0 / 3.0, -2.5e-17, 6.25, 123456789.123456789,
                   std::numeric_limits<double>::min()}) {
    std::string out;
    obs::append_json_number(out, v);
    EXPECT_TRUE(obs::json_valid(out)) << out;
    EXPECT_EQ(std::strtod(out.c_str(), nullptr), v) << out;
  }
}

TEST(Json, WriterProducesValidNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "bench \"quoted\"\npath\\x");
  w.key("nan_metric");
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.kv("count", std::uint64_t{42});
  w.kv("flag", true);
  w.key("empty");
  w.begin_object();
  w.end_object();
  w.key("values");
  w.begin_array();
  w.value(1.5);
  w.value(std::int64_t{-3});
  w.null();
  w.begin_object();
  w.kv("nested", false);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(obs::json_valid(w.str())) << w.str();
  EXPECT_NE(w.str().find("\"nan_metric\":null"), std::string::npos) << w.str();
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("{\"a\":1,}"));
  EXPECT_FALSE(obs::json_valid("{\"a\":nan}"));
  EXPECT_FALSE(obs::json_valid("[1 2]"));
  EXPECT_FALSE(obs::json_valid("{} extra"));
  EXPECT_TRUE(obs::json_valid("{\"a\":[1,2,{\"b\":null}],\"c\":-1.5e-3}"));
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterAndGaugeSemantics) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("test.counter");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same instrument.
  EXPECT_EQ(&reg.counter("test.counter"), &c);

  auto& g = reg.gauge("test.gauge");
  g.set(-2.5e-17);
  EXPECT_EQ(g.value(), -2.5e-17);
}

TEST(Metrics, HistogramPercentilesMatchUtilStats) {
  // The percentile interpolation is duplicated from util::stats because obs
  // cannot link against util; this pins the two implementations together.
  obs::Histogram h;
  Rng rng{1234};
  std::vector<double> xs(999);
  for (auto& x : xs) {
    x = rng.normal(0.0, 3.0);
    h.record(x);
  }
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(h.percentile(p), sb::percentile(xs, p)) << "p" << p;

  const auto s = h.snapshot();
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.p50, sb::percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(s.p90, sb::percentile(xs, 90.0));
  EXPECT_DOUBLE_EQ(s.p99, sb::percentile(xs, 99.0));
  EXPECT_DOUBLE_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
}

TEST(Metrics, RegistrySerializesToValidJson) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.json_counter").add(7);
  reg.gauge("test.json_gauge").set(std::numeric_limits<double>::infinity());
  reg.histogram("test.json_hist").record(1.0);
  obs::JsonWriter w;
  reg.write_json(w);
  EXPECT_TRUE(obs::json_valid(w.str())) << w.str();
  // The non-finite gauge must serialize as null, not a bare inf token.
  EXPECT_NE(w.str().find("\"test.json_gauge\":null"), std::string::npos)
      << w.str();
}

TEST(Metrics, HistogramLongRunPercentilesStayAccurate) {
  // A distribution shift AFTER the exact-sample budget: a first-N reservoir
  // would report the warm-up regime forever; the log-bucket bins must track
  // the whole run within their ~1/(2*kSubBuckets) bin resolution.
  obs::Histogram h;
  Rng rng{777};
  std::vector<double> xs;
  xs.reserve(20000);
  for (std::size_t i = 0; i < 20000; ++i) {
    const double v = i < obs::Histogram::kExactSamples
                         ? rng.normal(1.0, 0.05)
                         : rng.normal(100.0, 5.0);
    xs.push_back(v);
    h.record(v);
  }
  for (double p : {50.0, 90.0, 99.0}) {
    const double exact = sb::percentile(xs, p);
    EXPECT_NEAR(h.percentile(p), exact, 0.04 * std::abs(exact)) << "p" << p;
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(s.max, *std::max_element(xs.begin(), xs.end()));
  double sum = 0.0;
  for (double v : xs) sum += v;
  EXPECT_DOUBLE_EQ(s.sum, sum);
  // p0/p100 clamp to the exact extrema even in binned mode.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), s.min);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), s.max);
}

TEST(Metrics, HistogramMergeStaysExactSmallAndAccurateLarge) {
  // Two small shards whose union still fits the exact budget: the merge must
  // keep util::stats-exact percentiles.
  obs::Histogram a, b;
  Rng rng{4242};
  std::vector<double> all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(0.0, 2.0);
    a.record(v);
    all.push_back(v);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 1.0);
    b.record(v);
    all.push_back(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), 2000u);
  for (double p : {10.0, 50.0, 99.0})
    EXPECT_DOUBLE_EQ(a.percentile(p), sb::percentile(all, p)) << "p" << p;

  // Two binned shards (each past the exact budget): the bins add
  // elementwise, so the merged quantiles stay whole-run accurate.
  obs::Histogram c, d;
  std::vector<double> big;
  for (int i = 0; i < 6000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    c.record(v);
    big.push_back(v);
  }
  for (int i = 0; i < 6000; ++i) {
    const double v = rng.normal(50.0, 8.0);
    d.record(v);
    big.push_back(v);
  }
  c.merge(d);
  EXPECT_EQ(c.count(), 12000u);
  for (double p : {50.0, 90.0, 99.0}) {
    const double exact = sb::percentile(big, p);
    EXPECT_NEAR(c.percentile(p), exact, 0.04 * std::abs(exact)) << "p" << p;
  }
}

TEST(Metrics, EmptyHistogramSerializesNullStats) {
  auto& reg = obs::Registry::instance();
  reg.histogram("test.empty_hist").reset();
  obs::JsonWriter w;
  reg.write_json(w);
  EXPECT_TRUE(obs::json_valid(w.str())) << w.str();
  EXPECT_TRUE(obs::metrics_json_wellformed(w.str())) << w.str();
  const std::string expected =
      "\"test.empty_hist\":{\"count\":0,\"sum\":0,\"mean\":null,\"min\":null,"
      "\"max\":null,\"p50\":null,\"p90\":null,\"p99\":null}";
  EXPECT_NE(w.str().find(expected), std::string::npos) << w.str();

  // The validator must reject the legacy fabricated-zeros encoding even
  // though it is syntactically valid JSON.
  const std::string legacy =
      "{\"histograms\":{\"h\":{\"count\":0,\"sum\":0,\"mean\":0,\"min\":0,"
      "\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0}}}";
  EXPECT_TRUE(obs::json_valid(legacy));
  EXPECT_FALSE(obs::metrics_json_wellformed(legacy));
}

TEST(Metrics, SloTrackerCountsBreachesAndAttainment) {
  obs::SloTracker slo;
  slo.set_targets({0.25, 1.0});
  for (int i = 0; i < 98; ++i) slo.record(0.1);
  slo.record(2.0);
  slo.record(3.0);
  const auto s = slo.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.breaches, 2u);  // only the two samples above the p99 target
  EXPECT_DOUBLE_EQ(s.target_p50, 0.25);
  EXPECT_DOUBLE_EQ(s.target_p99, 1.0);
  EXPECT_DOUBLE_EQ(s.attained_p50, 0.1);
  EXPECT_GT(s.attained_p99, 1.0);  // the tail breaches, so the SLO is not met
  EXPECT_FALSE(s.met);

  slo.reset();
  const auto empty = slo.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.breaches, 0u);
  EXPECT_DOUBLE_EQ(empty.target_p99, 1.0);  // reset keeps the targets
  EXPECT_TRUE(std::isnan(empty.attained_p50));
  EXPECT_FALSE(empty.met);

  slo.record(0.2);
  slo.record(0.2);
  EXPECT_TRUE(slo.snapshot().met);

  auto& reg = obs::Registry::instance();
  reg.slo("test.slo").set_targets({0.5, 2.0});
  reg.slo("test.slo").record(0.3);
  obs::JsonWriter w;
  reg.write_slo_json(w);
  EXPECT_TRUE(obs::json_valid(w.str())) << w.str();
  EXPECT_TRUE(obs::metrics_json_wellformed(w.str())) << w.str();
  EXPECT_NE(w.str().find("\"test.slo\":{\"count\":1,\"breaches\":0"),
            std::string::npos)
      << w.str();
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(Recorder, RingWrapsAndAccountsOverflow) {
  obs::RecorderConfig cfg;
  cfg.capacity = 5;  // rounds up to 8
  obs::FlightRecorder rec{7, cfg};
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.session(), 7u);
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.record({obs::RecorderEvent::Kind::kWindow, false, i,
                static_cast<double>(i), 0.0, 0.0, 0.0});
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);  // 20 recorded - 8 retained
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, 12u + i);  // oldest survivor is seq 12
}

TEST(Recorder, TriggerIsRateLimitedAndDumpsValidJsonl) {
  const auto dir = std::filesystem::path{::testing::TempDir()} / "sb_recorder";
  std::filesystem::create_directories(dir);
  obs::RecorderConfig cfg;
  cfg.capacity = 16;
  cfg.out_dir = dir.string();
  cfg.min_trigger_gap_seconds = 3600.0;  // no second dump within this test
  cfg.max_dumps = 2;
  obs::FlightRecorder rec{3, cfg};
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record({obs::RecorderEvent::Kind::kImuVerdict, i == 9, i,
                obs::now_us(), 0.25 * static_cast<double>(i), 3.0, 2.5});

  EXPECT_TRUE(rec.trigger("imu_alert"));
  EXPECT_FALSE(rec.trigger("imu_alert"));  // inside the rate-limit gap
  EXPECT_TRUE(rec.trigger("final_verdict", /*force=*/true));
  EXPECT_FALSE(rec.trigger("another", /*force=*/true));  // max_dumps reached
  EXPECT_EQ(rec.dumps(), 2u);

  std::ifstream is{rec.dump_path()};
  ASSERT_TRUE(is.is_open()) << rec.dump_path();
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(obs::json_valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 11u);  // blackbox header + 10 retained events
  std::ifstream is2{rec.dump_path()};
  std::string header;
  std::getline(is2, header);
  EXPECT_NE(header.find("\"type\":\"blackbox\""), std::string::npos) << header;
  EXPECT_NE(header.find("\"session\":3"), std::string::npos) << header;
  EXPECT_NE(header.find("\"reason\":\"final_verdict\""), std::string::npos)
      << header;
  std::filesystem::remove_all(dir);
}

TEST(Recorder, DisabledProbeAndRecordDoNotAllocate) {
  obs::set_recorder_enabled(false);
  obs::RecorderConfig cfg;
  cfg.capacity = 64;
  obs::FlightRecorder rec{1, cfg};  // ring preallocated here, before the count
  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    bool on = obs::recorder_enabled();
    // The enabled-path record() itself must also stay allocation-free: the
    // ring was preallocated at construction.
    if (!on)
      rec.record({obs::RecorderEvent::Kind::kChunk, false,
                  static_cast<std::uint64_t>(i), 0.0, 0.0, 0.0, 0.0});
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(rec.recorded(), 10000u);
}

// ---------------------------------------------------------------------------
// Telemetry exporter.

TEST(Telemetry, EmitsExactCounterAndHistogramDeltas) {
  auto& reg = obs::Registry::instance();
  auto& c = reg.counter("test.tel_counter");
  auto& h = reg.histogram("test.tel_hist");
  c.reset();
  h.reset();

  const auto path = std::filesystem::path{::testing::TempDir()} /
                    "sb_telemetry_deltas.jsonl";
  {
    obs::TelemetryExporter exporter{{path.string(), /*interval_ms=*/0.0}};
    EXPECT_TRUE(exporter.tick(0.0));  // baseline sample
    c.add(7);
    for (double v : {0.1, 0.2, 0.3}) h.record(v);
    EXPECT_TRUE(exporter.tick(1.0e6));
    EXPECT_EQ(exporter.samples(), 2u);
  }
  std::ifstream is{path};
  ASSERT_TRUE(is.is_open());
  std::string line1, line2;
  std::getline(is, line1);
  std::getline(is, line2);
  for (const auto& line : {line1, line2}) {
    EXPECT_TRUE(obs::json_valid(line)) << line;
    EXPECT_TRUE(obs::metrics_json_wellformed(line)) << line;
  }
  // The second sample carries the interval's deltas, not absolute values.
  EXPECT_NE(line1.find("\"test.tel_counter\":0"), std::string::npos) << line1;
  EXPECT_NE(line2.find("\"test.tel_counter\":7"), std::string::npos) << line2;
  EXPECT_NE(line2.find("\"test.tel_hist\":{\"count\":3"), std::string::npos)
      << line2;
  EXPECT_NE(line2.find("\"interval_us\":1000000"), std::string::npos) << line2;
  std::filesystem::remove(path);
}

TEST(Telemetry, IntervalGatesSamplingAndForceBypasses) {
  const auto path = std::filesystem::path{::testing::TempDir()} /
                    "sb_telemetry_interval.jsonl";
  obs::TelemetryExporter exporter{{path.string(), /*interval_ms=*/1000.0}};
  EXPECT_TRUE(exporter.tick(0.0));        // first tick always samples
  EXPECT_FALSE(exporter.tick(0.5e6));     // 500 ms < interval
  EXPECT_FALSE(exporter.tick(0.999e6));
  EXPECT_TRUE(exporter.tick(1.25e6));     // interval elapsed
  EXPECT_FALSE(exporter.tick(1.5e6));
  EXPECT_TRUE(exporter.tick(1.5e6, /*force=*/true));  // the final flush path
  EXPECT_EQ(exporter.samples(), 3u);
  std::filesystem::remove(path);
}

TEST(Telemetry, DisabledTickDoesNotAllocate) {
  obs::set_telemetry("");  // disabled regardless of SB_TELEMETRY
  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) obs::telemetry_tick();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST(Trace, SpansNestAcrossParallelWorkersAndExportValidChromeJson) {
  ThreadCountGuard threads{4};
  TraceGuard trace{true};
  obs::Trace::instance().clear();

  const auto before = obs::Trace::instance().stage_totals();
  {
    obs::ScopedSpan outer{"outer", obs::Stage::kPredict};
    util::parallel_for(
        64,
        [&](std::size_t) {
          obs::ScopedSpan inner{"worker_task", obs::Stage::kStft};
        },
        1);
  }
  const auto after = obs::Trace::instance().stage_totals();

  // Every span records an event, on workers and the main thread alike.
  EXPECT_GE(obs::Trace::instance().event_count(), 65u);

  // Exclusive stage accrual: the outer span is the only stage root — the
  // inner spans run either inside pool workers or nested under the outer
  // span on this thread, and must not accrue.
  const auto predict = static_cast<std::size_t>(obs::Stage::kPredict);
  const auto stft = static_cast<std::size_t>(obs::Stage::kStft);
  EXPECT_EQ(after[predict].count - before[predict].count, 1u);
  EXPECT_GT(after[predict].seconds, before[predict].seconds);
  EXPECT_EQ(after[stft].count, before[stft].count);

  const std::string json = obs::Trace::instance().chrome_json();
  EXPECT_TRUE(obs::json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_task\""), std::string::npos);
}

TEST(Trace, DisabledSpanDoesNotAllocate) {
  TraceGuard trace{false};
  const auto before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::ScopedSpan span{"disabled_probe", obs::Stage::kTrain};
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(Trace, ClearDropsEventsAndTotals) {
  TraceGuard trace{true};
  {
    obs::ScopedSpan span{"to_drop", obs::Stage::kDetect};
  }
  EXPECT_GE(obs::Trace::instance().event_count(), 1u);
  obs::Trace::instance().clear();
  EXPECT_EQ(obs::Trace::instance().event_count(), 0u);
  const auto totals = obs::Trace::instance().stage_totals();
  for (const auto& t : totals) {
    EXPECT_EQ(t.seconds, 0.0);
    EXPECT_EQ(t.count, 0u);
  }
}

// ---------------------------------------------------------------------------
// Tracing must not perturb seeded computation.

std::vector<float> train_fingerprint(bool tracing, std::size_t threads) {
  ThreadCountGuard guard{threads};
  TraceGuard trace{tracing};
  const ml::ModelInputShape shape{.channels = 2, .height = 8, .width = 12};
  Rng model_rng{900};
  auto model = ml::make_model(ml::ModelKind::kMlp, shape, 3, model_rng);

  Rng data_rng{901};
  ml::RegressionDataset data;
  data.x = ml::Tensor{{24, shape.channels, shape.height, shape.width}};
  for (auto& v : data.x.flat()) v = static_cast<float>(data_rng.normal());
  data.y = ml::Tensor{{24, 3}};
  for (auto& v : data.y.flat()) v = static_cast<float>(data_rng.normal());
  Rng split_rng{902};
  auto [train, val] = ml::split_dataset(data, 0.25, split_rng);

  ml::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 8;
  cfg.eval_batch_size = 8;
  ml::train_regressor(*model, train, val, cfg);

  std::vector<float> fingerprint;
  for (ml::Param* p : model->params())
    for (float v : p->value.flat()) fingerprint.push_back(v);
  return fingerprint;
}

TEST(Trace, TracingDoesNotPerturbSeededTraining) {
  const auto baseline = train_fingerprint(false, 1);
  ASSERT_FALSE(baseline.empty());
  for (const bool tracing : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      if (!tracing && threads == 1) continue;  // that's the baseline
      const auto fp = train_fingerprint(tracing, threads);
      ASSERT_EQ(fp.size(), baseline.size());
      EXPECT_EQ(std::memcmp(baseline.data(), fp.data(),
                            baseline.size() * sizeof(float)),
                0)
          << "tracing=" << tracing << " threads=" << threads
          << " diverged from the untraced serial run";
    }
  }
}

// ---------------------------------------------------------------------------
// RCA decision-trace JSONL.

TEST(DecisionTrace, JsonlLinesAreIndividuallyValidJson) {
  core::RcaDecisionTrace trace;
  core::ImuWindowDecision w;
  w.t0 = 1.0;
  w.t1 = 1.5;
  w.mean_z = {0.4, 3.2, 0.1};
  w.spread_z = {0.2, std::numeric_limits<double>::quiet_NaN(), 0.3};
  w.score = 3.2;
  w.threshold = 2.5;
  w.flagged = true;
  w.alert = true;
  trace.imu.push_back(w);
  core::GpsFixDecision g;
  g.t = 2.0;
  g.running_mean_err = 0.7;
  g.pos_dev = 12.0;
  g.vel_threshold = 1.1;
  g.pos_threshold = 20.0;
  trace.gps.push_back(g);
  trace.imu_attacked = true;
  trace.gps_mode = core::GpsDetectorMode::kAudioOnly;

  const std::string jsonl = io::decision_trace_jsonl(trace);
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    const std::string_view line{jsonl.data() + start, end - start};
    EXPECT_TRUE(obs::json_valid(line)) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 4u);  // imu window + gps fix + health + summary
  EXPECT_NE(jsonl.find("\"type\":\"imu_window\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"gps_fix\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"health\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"mics_alive\":4"), std::string::npos);
  EXPECT_NE(jsonl.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(jsonl.find("\"gps_mode\":\"audio_only\""), std::string::npos);
  // The NaN spread component must be null, not a bare token.
  EXPECT_EQ(jsonl.find("nan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logger.

TEST(Log, LevelParsingAndGating) {
  const obs::LogLevel prior = obs::log_level();
  obs::set_log_level(obs::LogLevel::kQuiet);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kError));
  obs::set_log_level(obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  obs::set_log_level(prior);
}

}  // namespace
}  // namespace sb
