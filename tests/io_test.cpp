#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "core/gps_rca.hpp"
#include "io/flight_csv.hpp"
#include "io/wav.hpp"
#include "test_helpers.hpp"

namespace sb::io {
namespace {

std::string temp_path(const char* name) {
  return std::string{"/tmp/soundboost_io_test_"} + name;
}

WavData make_tone(std::size_t channels, std::size_t n, double freq, double fs) {
  WavData d;
  d.sample_rate = fs;
  for (std::size_t c = 0; c < channels; ++c) {
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
      s[i] = 0.5 * std::sin(2.0 * M_PI * freq * static_cast<double>(i) / fs +
                            static_cast<double>(c));
    d.channels.push_back(std::move(s));
  }
  return d;
}

TEST(Wav, RoundTripPreservesSamples) {
  const auto path = temp_path("roundtrip.wav");
  const auto original = make_tone(2, 1000, 440.0, 16000.0);
  ASSERT_TRUE(write_wav(path, original));

  WavData loaded;
  ASSERT_TRUE(read_wav(path, loaded));
  EXPECT_EQ(loaded.num_channels(), 2u);
  EXPECT_EQ(loaded.num_samples(), 1000u);
  EXPECT_DOUBLE_EQ(loaded.sample_rate, 16000.0);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < 1000; i += 37)
      EXPECT_NEAR(loaded.channels[c][i], original.channels[c][i], 1.0 / 32767.0);
  std::remove(path.c_str());
}

TEST(Wav, ClipsOutOfRangeSamples) {
  const auto path = temp_path("clip.wav");
  WavData d;
  d.channels.push_back({5.0, -5.0, 0.0});
  ASSERT_TRUE(write_wav(path, d));
  WavData loaded;
  ASSERT_TRUE(read_wav(path, loaded));
  EXPECT_NEAR(loaded.channels[0][0], 1.0, 1e-3);
  EXPECT_NEAR(loaded.channels[0][1], -1.0, 1e-3);
  std::remove(path.c_str());
}

TEST(Wav, RejectsEmptyData) {
  EXPECT_FALSE(write_wav(temp_path("empty.wav"), WavData{}));
}

TEST(Wav, RejectsRaggedChannels) {
  WavData d;
  d.channels.push_back(std::vector<double>(10, 0.0));
  d.channels.push_back(std::vector<double>(5, 0.0));
  EXPECT_FALSE(write_wav(temp_path("ragged.wav"), d));
}

TEST(Wav, RejectsMalformedFile) {
  const auto path = temp_path("garbage.wav");
  {
    std::ofstream os{path, std::ios::binary};
    os << "this is not a wav file at all, not even close";
  }
  WavData out;
  EXPECT_FALSE(read_wav(path, out));
  std::remove(path.c_str());
}

TEST(Wav, RejectsMissingFile) {
  WavData out;
  EXPECT_FALSE(read_wav("/nonexistent/dir/nope.wav", out));
}

// ---------------------------------------------------------------------------
// Corrupt-header hardening: a hostile or truncated file must produce a clean
// `false`, never a crash, a backwards seek, or a giant allocation.

std::string wav_bytes(const WavData& d, const char* name) {
  const auto path = temp_path(name);
  EXPECT_TRUE(write_wav(path, d));
  std::ifstream is{path, std::ios::binary};
  std::string bytes{std::istreambuf_iterator<char>{is}, {}};
  std::remove(path.c_str());
  return bytes;
}

bool read_bytes(const std::string& bytes, const char* name, WavData& out) {
  const auto path = temp_path(name);
  {
    std::ofstream os{path, std::ios::binary};
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const bool ok = read_wav(path, out);
  std::remove(path.c_str());
  return ok;
}

void patch_u32(std::string& bytes, std::size_t offset, std::uint32_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

void patch_u16(std::string& bytes, std::size_t offset, std::uint16_t v) {
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

// write_wav layout: "RIFF" size "WAVE" | "fmt " @12, size @16, format @20,
// channels @22, rate @24, byte rate @28, block align @32, bits @34 |
// "data" @36, size @40, samples @44.

TEST(Wav, RejectsTruncatedFile) {
  const auto bytes = wav_bytes(make_tone(2, 500, 440.0, 16000.0), "trunc_src.wav");
  WavData out;
  // Cut inside the sample data AND inside the header.
  EXPECT_FALSE(read_bytes(bytes.substr(0, bytes.size() / 2), "trunc_data.wav", out));
  EXPECT_FALSE(read_bytes(bytes.substr(0, 30), "trunc_hdr.wav", out));
}

TEST(Wav, RejectsHugeDeclaredDataChunk) {
  auto bytes = wav_bytes(make_tone(1, 100, 440.0, 16000.0), "huge_src.wav");
  patch_u32(bytes, 40, 0xFFFFFF00u);  // data chunk claims ~4 GB
  WavData out;
  EXPECT_FALSE(read_bytes(bytes, "huge.wav", out));
  EXPECT_TRUE(out.channels.empty());  // no allocation happened
}

TEST(Wav, RejectsFmtChunkSmallerThanPcmHeader) {
  auto bytes = wav_bytes(make_tone(1, 100, 440.0, 16000.0), "fmt_src.wav");
  patch_u32(bytes, 16, 8);  // fmt chunk too small: would seek backwards
  WavData out;
  EXPECT_FALSE(read_bytes(bytes, "fmt_small.wav", out));
}

TEST(Wav, RejectsZeroChannels) {
  auto bytes = wav_bytes(make_tone(1, 100, 440.0, 16000.0), "zch_src.wav");
  patch_u16(bytes, 22, 0);
  WavData out;
  EXPECT_FALSE(read_bytes(bytes, "zero_channels.wav", out));
}

TEST(Wav, RejectsUnsupportedBitDepths) {
  for (std::uint16_t bits : {std::uint16_t{8}, std::uint16_t{24}, std::uint16_t{32}}) {
    auto bytes = wav_bytes(make_tone(1, 100, 440.0, 16000.0), "bits_src.wav");
    patch_u16(bytes, 34, bits);
    WavData out;
    EXPECT_FALSE(read_bytes(bytes, "bits.wav", out)) << bits << " bits accepted";
  }
}

TEST(Wav, RejectsNonPcmFormat) {
  auto bytes = wav_bytes(make_tone(1, 100, 440.0, 16000.0), "fmt3_src.wav");
  patch_u16(bytes, 20, 3);  // IEEE float
  WavData out;
  EXPECT_FALSE(read_bytes(bytes, "ieee.wav", out));
}

TEST(Wav, SkipsUnknownChunksButRejectsOversizedOnes) {
  // A well-formed extra chunk before "data" is fine...
  const auto src = wav_bytes(make_tone(1, 100, 440.0, 16000.0), "xchunk_src.wav");
  std::string with_chunk = src.substr(0, 36);
  with_chunk += "LIST";
  const std::uint32_t list_size = 4;
  with_chunk.append(reinterpret_cast<const char*>(&list_size), 4);
  with_chunk += "INFO";
  with_chunk += src.substr(36);
  WavData out;
  EXPECT_TRUE(read_bytes(with_chunk, "xchunk_ok.wav", out));
  EXPECT_EQ(out.num_samples(), 100u);

  // ...but one whose declared size exceeds the file is rejected, not skipped
  // into EOF oblivion.
  patch_u32(with_chunk, 40, 0x7FFFFFFFu);
  EXPECT_FALSE(read_bytes(with_chunk, "xchunk_bad.wav", out));
}

TEST(Wav, ExportsMicArrayRecording) {
  const auto flight = test::hover_flight(4.0, 70);
  const auto synth = test::lab().synthesizer(flight);
  const auto audio = synth.synthesize(flight.log, 1.0, 1.5);
  const auto path = temp_path("mics.wav");
  ASSERT_TRUE(write_wav(path, audio, 2.0));
  WavData loaded;
  ASSERT_TRUE(read_wav(path, loaded));
  EXPECT_EQ(loaded.num_channels(), 4u);
  EXPECT_EQ(loaded.num_samples(), audio.num_samples());
  std::remove(path.c_str());
}

std::size_t count_lines(const std::string& path) {
  std::ifstream is{path};
  std::size_t n = 0;
  std::string line;
  while (std::getline(is, line)) ++n;
  return n;
}

TEST(FlightCsv, TruthExport) {
  const auto flight = test::hover_flight(3.0, 71);
  const auto path = temp_path("truth.csv");
  ASSERT_TRUE(write_truth_csv(path, flight.log, 8));
  EXPECT_EQ(count_lines(path), 1 + flight.log.t.size() / 8 +
                                   (flight.log.t.size() % 8 ? 1 : 0));
  std::remove(path.c_str());
}

TEST(FlightCsv, ImuAndGpsExports) {
  const auto flight = test::hover_flight(3.0, 72);
  const auto imu_path = temp_path("imu.csv");
  const auto gps_path = temp_path("gps.csv");
  ASSERT_TRUE(write_imu_csv(imu_path, flight.log));
  ASSERT_TRUE(write_gps_csv(gps_path, flight.log));
  EXPECT_EQ(count_lines(imu_path), 1 + flight.log.imu.size());
  EXPECT_EQ(count_lines(gps_path), 1 + flight.log.gps.size());
  std::remove(imu_path.c_str());
  std::remove(gps_path.c_str());
}

TEST(FlightCsv, TraceExport) {
  core::GpsRcaDetector::Trace trace;
  trace.t = {0.2, 0.4};
  trace.v_est = {{1, 0, 0}, {1, 1, 0}};
  trace.v_gps = {{0.9, 0, 0}, {1, 1, 0.1}};
  trace.pos_est = {{0, 0, -10}, {0.2, 0, -10}};
  trace.running_mean = {0.1, 0.12};
  const auto path = temp_path("trace.csv");
  ASSERT_TRUE(write_trace_csv(path, trace));
  EXPECT_EQ(count_lines(path), 3u);
  std::remove(path.c_str());
}

TEST(FlightCsv, ZeroStrideRejected) {
  const auto flight = test::hover_flight(2.0, 73);
  EXPECT_FALSE(write_truth_csv(temp_path("bad.csv"), flight.log, 0));
}

}  // namespace
}  // namespace sb::io
