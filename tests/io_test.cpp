#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/gps_rca.hpp"
#include "io/flight_csv.hpp"
#include "io/wav.hpp"
#include "test_helpers.hpp"

namespace sb::io {
namespace {

std::string temp_path(const char* name) {
  return std::string{"/tmp/soundboost_io_test_"} + name;
}

WavData make_tone(std::size_t channels, std::size_t n, double freq, double fs) {
  WavData d;
  d.sample_rate = fs;
  for (std::size_t c = 0; c < channels; ++c) {
    std::vector<double> s(n);
    for (std::size_t i = 0; i < n; ++i)
      s[i] = 0.5 * std::sin(2.0 * M_PI * freq * static_cast<double>(i) / fs +
                            static_cast<double>(c));
    d.channels.push_back(std::move(s));
  }
  return d;
}

TEST(Wav, RoundTripPreservesSamples) {
  const auto path = temp_path("roundtrip.wav");
  const auto original = make_tone(2, 1000, 440.0, 16000.0);
  ASSERT_TRUE(write_wav(path, original));

  WavData loaded;
  ASSERT_TRUE(read_wav(path, loaded));
  EXPECT_EQ(loaded.num_channels(), 2u);
  EXPECT_EQ(loaded.num_samples(), 1000u);
  EXPECT_DOUBLE_EQ(loaded.sample_rate, 16000.0);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < 1000; i += 37)
      EXPECT_NEAR(loaded.channels[c][i], original.channels[c][i], 1.0 / 32767.0);
  std::remove(path.c_str());
}

TEST(Wav, ClipsOutOfRangeSamples) {
  const auto path = temp_path("clip.wav");
  WavData d;
  d.channels.push_back({5.0, -5.0, 0.0});
  ASSERT_TRUE(write_wav(path, d));
  WavData loaded;
  ASSERT_TRUE(read_wav(path, loaded));
  EXPECT_NEAR(loaded.channels[0][0], 1.0, 1e-3);
  EXPECT_NEAR(loaded.channels[0][1], -1.0, 1e-3);
  std::remove(path.c_str());
}

TEST(Wav, RejectsEmptyData) {
  EXPECT_FALSE(write_wav(temp_path("empty.wav"), WavData{}));
}

TEST(Wav, RejectsRaggedChannels) {
  WavData d;
  d.channels.push_back(std::vector<double>(10, 0.0));
  d.channels.push_back(std::vector<double>(5, 0.0));
  EXPECT_FALSE(write_wav(temp_path("ragged.wav"), d));
}

TEST(Wav, RejectsMalformedFile) {
  const auto path = temp_path("garbage.wav");
  {
    std::ofstream os{path, std::ios::binary};
    os << "this is not a wav file at all, not even close";
  }
  WavData out;
  EXPECT_FALSE(read_wav(path, out));
  std::remove(path.c_str());
}

TEST(Wav, RejectsMissingFile) {
  WavData out;
  EXPECT_FALSE(read_wav("/nonexistent/dir/nope.wav", out));
}

TEST(Wav, ExportsMicArrayRecording) {
  const auto flight = test::hover_flight(4.0, 70);
  const auto synth = test::lab().synthesizer(flight);
  const auto audio = synth.synthesize(flight.log, 1.0, 1.5);
  const auto path = temp_path("mics.wav");
  ASSERT_TRUE(write_wav(path, audio, 2.0));
  WavData loaded;
  ASSERT_TRUE(read_wav(path, loaded));
  EXPECT_EQ(loaded.num_channels(), 4u);
  EXPECT_EQ(loaded.num_samples(), audio.num_samples());
  std::remove(path.c_str());
}

std::size_t count_lines(const std::string& path) {
  std::ifstream is{path};
  std::size_t n = 0;
  std::string line;
  while (std::getline(is, line)) ++n;
  return n;
}

TEST(FlightCsv, TruthExport) {
  const auto flight = test::hover_flight(3.0, 71);
  const auto path = temp_path("truth.csv");
  ASSERT_TRUE(write_truth_csv(path, flight.log, 8));
  EXPECT_EQ(count_lines(path), 1 + flight.log.t.size() / 8 +
                                   (flight.log.t.size() % 8 ? 1 : 0));
  std::remove(path.c_str());
}

TEST(FlightCsv, ImuAndGpsExports) {
  const auto flight = test::hover_flight(3.0, 72);
  const auto imu_path = temp_path("imu.csv");
  const auto gps_path = temp_path("gps.csv");
  ASSERT_TRUE(write_imu_csv(imu_path, flight.log));
  ASSERT_TRUE(write_gps_csv(gps_path, flight.log));
  EXPECT_EQ(count_lines(imu_path), 1 + flight.log.imu.size());
  EXPECT_EQ(count_lines(gps_path), 1 + flight.log.gps.size());
  std::remove(imu_path.c_str());
  std::remove(gps_path.c_str());
}

TEST(FlightCsv, TraceExport) {
  core::GpsRcaDetector::Trace trace;
  trace.t = {0.2, 0.4};
  trace.v_est = {{1, 0, 0}, {1, 1, 0}};
  trace.v_gps = {{0.9, 0, 0}, {1, 1, 0.1}};
  trace.pos_est = {{0, 0, -10}, {0.2, 0, -10}};
  trace.running_mean = {0.1, 0.12};
  const auto path = temp_path("trace.csv");
  ASSERT_TRUE(write_trace_csv(path, trace));
  EXPECT_EQ(count_lines(path), 3u);
  std::remove(path.c_str());
}

TEST(FlightCsv, ZeroStrideRejected) {
  const auto flight = test::hover_flight(2.0, 73);
  EXPECT_FALSE(write_truth_csv(temp_path("bad.csv"), flight.log, 0));
}

}  // namespace
}  // namespace sb::io
