#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/signature.hpp"
#include "obs/metrics.hpp"
#include "stream/inference_scheduler.hpp"
#include "stream/rca_session.hpp"
#include "stream/streaming_extractor.hpp"
#include "util/rng.hpp"

namespace sb::stream {
namespace {

// A deterministic pseudo-random multichannel stream (not flight audio; the
// extractor is pure index arithmetic and never inspects the waveform).
acoustics::MultiChannelAudio noise_stream(std::size_t n, std::uint64_t seed) {
  acoustics::MultiChannelAudio a;
  Rng rng{seed};
  for (auto& ch : a.channels) {
    ch.resize(n);
    for (auto& x : ch) x = rng.normal(0.0, 1.0);
  }
  return a;
}

acoustics::MultiChannelAudio slice(const acoustics::MultiChannelAudio& full,
                                   std::size_t begin, std::size_t end) {
  acoustics::MultiChannelAudio chunk;
  chunk.sample_rate = full.sample_rate;
  for (std::size_t c = 0; c < sensors::kNumMics; ++c)
    chunk.channels[c].assign(full.channels[c].begin() + begin,
                             full.channels[c].begin() + end);
  return chunk;
}

std::vector<core::SensoryMapper::WindowAudio> push_in_chunks(
    StreamingFeatureExtractor& ex, const acoustics::MultiChannelAudio& full,
    std::size_t chunk_size) {
  std::vector<core::SensoryMapper::WindowAudio> out;
  for (std::size_t i = 0; i < full.num_samples(); i += chunk_size) {
    const std::size_t end = std::min(i + chunk_size, full.num_samples());
    for (auto& w : ex.push(slice(full, i, end))) out.push_back(std::move(w));
  }
  return out;
}

TEST(StreamingExtractor, EmitsTheOfflineWindowGrid) {
  StreamingExtractorConfig cfg;  // 16 kHz, settle 2, stride 0.5, window 0.5
  StreamingFeatureExtractor ex{cfg};
  const double duration = 6.3;
  const auto n = static_cast<std::size_t>(
      std::llround(duration * cfg.sample_rate));
  const auto full = noise_stream(n, 1);
  const auto windows = push_in_chunks(ex, full, 4096);

  const auto grid = core::window_grid(cfg.settle, cfg.stride,
                                      cfg.window_seconds, duration);
  ASSERT_EQ(windows.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_DOUBLE_EQ(windows[k].t0, grid[k].t0);
    EXPECT_DOUBLE_EQ(windows[k].t1, grid[k].t1);
    // The emitted audio is the verbatim stream slice at the synthesizer's
    // index convention: begin = llround(t0 * fs), length = llround(w * fs).
    const auto begin = static_cast<std::size_t>(
        std::llround(grid[k].t0 * cfg.sample_rate));
    ASSERT_EQ(windows[k].audio.num_samples(), ex.window_length());
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      for (std::size_t i = 0; i < ex.window_length(); ++i)
        ASSERT_EQ(windows[k].audio.channels[c][i], full.channels[c][begin + i])
            << "window " << k << " ch " << c << " sample " << i;
  }
}

TEST(StreamingExtractor, ChunkSizeIsIrrelevant) {
  StreamingExtractorConfig cfg;
  const auto n = static_cast<std::size_t>(std::llround(4.7 * cfg.sample_rate));
  const auto full = noise_stream(n, 2);

  StreamingFeatureExtractor whole{cfg};
  const auto ref = push_in_chunks(whole, full, n);  // one push
  ASSERT_FALSE(ref.empty());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}, std::size_t{16000}}) {
    StreamingFeatureExtractor ex{cfg};
    const auto got = push_in_chunks(ex, full, chunk);
    ASSERT_EQ(got.size(), ref.size()) << "chunk " << chunk;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_DOUBLE_EQ(got[k].t0, ref[k].t0);
      for (std::size_t c = 0; c < sensors::kNumMics; ++c)
        ASSERT_EQ(got[k].audio.channels[c], ref[k].audio.channels[c])
            << "chunk " << chunk << " window " << k << " ch " << c;
    }
  }
}

TEST(StreamingExtractor, OverlappingStrideEmitsEveryGridWindow) {
  StreamingExtractorConfig cfg;
  cfg.stride = 0.25;  // windows overlap by half
  StreamingFeatureExtractor ex{cfg};
  const double duration = 5.0;
  const auto n = static_cast<std::size_t>(
      std::llround(duration * cfg.sample_rate));
  const auto full = noise_stream(n, 3);
  const auto windows = push_in_chunks(ex, full, 777);

  const auto grid = core::window_grid(cfg.settle, cfg.stride,
                                      cfg.window_seconds, duration);
  ASSERT_EQ(windows.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_DOUBLE_EQ(windows[k].t0, grid[k].t0);
    const auto begin = static_cast<std::size_t>(
        std::llround(grid[k].t0 * cfg.sample_rate));
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      for (std::size_t i = 0; i < ex.window_length(); ++i)
        ASSERT_EQ(windows[k].audio.channels[c][i], full.channels[c][begin + i]);
  }
}

TEST(StreamingExtractor, BufferStaysBoundedOnLongStreams) {
  StreamingExtractorConfig cfg;
  StreamingFeatureExtractor ex{cfg};
  const std::size_t chunk = 1600;  // 100 ms
  const auto window_plus_stride = static_cast<std::size_t>(
      std::llround((cfg.window_seconds + cfg.stride) * cfg.sample_rate));
  std::size_t emitted = 0;
  for (int tick = 0; tick < 600; ++tick) {  // one minute of stream
    emitted += ex.push(noise_stream(chunk, 100 + tick)).size();
    EXPECT_LE(ex.buffered_samples(), window_plus_stride + chunk);
  }
  EXPECT_GT(emitted, 100u);
  EXPECT_EQ(ex.samples_pushed(), 600 * chunk);
}

TEST(StreamingExtractor, RejectsRaggedChunks) {
  StreamingFeatureExtractor ex{StreamingExtractorConfig{}};
  auto chunk = noise_stream(64, 4);
  chunk.channels[1].pop_back();
  EXPECT_THROW(ex.push(chunk), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Session + scheduler structure.  One tiny MLP trained on a single short
// flight is enough: these tests pin ordering, backpressure and error paths,
// not detection quality (that is the integration suite's job).

class StreamServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::SensoryMapperConfig cfg;
    cfg.model = ml::ModelKind::kMlp;
    cfg.dataset.stride = 0.5;
    cfg.train.epochs = 1;
    mapper_ = new core::SensoryMapper{cfg};
    lab_ = new core::FlightLab{};
    core::FlightScenario s;
    s.mission = sim::Mission::hover({0, 0, -10}, 10.0);
    s.seed = 99;
    flight_ = new core::Flight{lab_->fly(s)};
    const std::vector<core::Flight> flights{*flight_};
    mapper_->fit(*lab_, flights);
    audio_ = new acoustics::MultiChannelAudio{
        lab_->synthesizer(*flight_).synthesize(flight_->log, 0.0, 10.0)};
    // Calibrate both detector stages on the same flight — threshold quality
    // is irrelevant here, but sessions require calibrated detectors.
    imu_ = new core::ImuRcaDetector{core::ImuRcaConfig{}};
    gps_ = new core::GpsRcaDetector{core::GpsRcaConfig{}};
    const auto preds = mapper_->predict_flight(*lab_, *flight_);
    imu_->calibrate(core::ImuRcaDetector::residuals(*flight_, preds));
    for (const auto mode :
         {core::GpsDetectorMode::kAudioOnly, core::GpsDetectorMode::kAudioImu}) {
      const std::vector<core::GpsRcaDetector::Result> results{
          gps_->analyze(*flight_, preds, mode)};
      gps_->calibrate(results, mode);
    }
  }
  static void TearDownTestSuite() {
    delete gps_;
    delete imu_;
    delete audio_;
    delete flight_;
    delete lab_;
    delete mapper_;
  }

  RcaSession make_session(std::uint64_t id) {
    return RcaSession{id, *mapper_, *imu_, *gps_};
  }

  // Pushes the shared flight's streams into the session up to `seconds`.
  void feed(RcaSession& session, double seconds) {
    const auto upto = std::min(
        static_cast<std::size_t>(std::llround(seconds * audio_->sample_rate)),
        audio_->num_samples());
    session.push_audio(slice(*audio_, 0, upto));
    session.push_imu(flight_->log.imu);
    session.push_gps(flight_->log.gps);
  }

  static core::SensoryMapper* mapper_;
  static core::FlightLab* lab_;
  static core::Flight* flight_;
  static acoustics::MultiChannelAudio* audio_;
  static core::ImuRcaDetector* imu_;
  static core::GpsRcaDetector* gps_;
};

core::SensoryMapper* StreamServingTest::mapper_ = nullptr;
core::FlightLab* StreamServingTest::lab_ = nullptr;
core::Flight* StreamServingTest::flight_ = nullptr;
acoustics::MultiChannelAudio* StreamServingTest::audio_ = nullptr;
core::ImuRcaDetector* StreamServingTest::imu_ = nullptr;
core::GpsRcaDetector* StreamServingTest::gps_ = nullptr;

TEST_F(StreamServingTest, SessionRequiresTrainedMapper) {
  core::SensoryMapper untrained{core::SensoryMapperConfig{}};
  EXPECT_THROW(RcaSession(1, untrained, *imu_, *gps_), std::logic_error);
}

TEST_F(StreamServingTest, SchedulerRejectsDegenerateConfigAndDuplicateIds) {
  EXPECT_THROW(InferenceScheduler(*mapper_, {.max_batch = 0}),
               std::invalid_argument);
  EXPECT_THROW(InferenceScheduler(*mapper_, {.queue_capacity = 0}),
               std::invalid_argument);
  auto a = make_session(7);
  auto b = make_session(7);
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  EXPECT_THROW(sched.attach(b), std::invalid_argument);
}

TEST_F(StreamServingTest, DrainsAllSessionsAndDeliversInOrder) {
  auto a = make_session(2);
  auto b = make_session(1);
  const auto occupancy_before =
      obs::Registry::instance().histogram("stream.batch_occupancy").count();
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  sched.attach(b);
  feed(a, 8.0);
  feed(b, 8.0);
  ASSERT_GT(a.windows_staged(), 0u);
  sched.drain();
  EXPECT_EQ(sched.windows_shed(), 0u);
  EXPECT_EQ(sched.windows_inferred(), a.windows_staged() + b.windows_staged());
  EXPECT_EQ(a.windows_delivered(), a.windows_staged());
  EXPECT_EQ(b.windows_delivered(), b.windows_staged());
  // The scheduler surfaces its own load: one occupancy sample per batch,
  // each within [1, max_batch], and a live-session gauge.
  const auto occupancy =
      obs::Registry::instance().histogram("stream.batch_occupancy").snapshot();
  EXPECT_EQ(occupancy.count - occupancy_before, sched.batches_run());
  EXPECT_GE(occupancy.min, 1.0);
  EXPECT_LE(occupancy.max, 16.0);  // default max_batch
  EXPECT_EQ(obs::Registry::instance().gauge("stream.sessions_active").value(),
            2.0);
  // Verdict timestamps are monotonically non-decreasing per session.
  for (auto* s : {&a, &b}) {
    double last = 0.0;
    for (const auto& e : s->poll_verdicts()) {
      EXPECT_GE(e.decided_at, last);
      last = e.decided_at;
    }
    const auto report = s->finish();
    EXPECT_GT(report.health.windows_total, 0u);
  }
}

TEST_F(StreamServingTest, OverflowShedsOldestAndEngagesDegradation) {
  auto a = make_session(1);
  // Capacity 2: staging a whole flight's windows at once forces shedding,
  // and the shed windows must be the OLDEST staged ones.
  InferenceScheduler sched{*mapper_, {.max_batch = 2, .queue_capacity = 2}};
  sched.attach(a);
  feed(a, 10.0);
  const std::size_t staged = a.windows_staged();
  ASSERT_GT(staged, 4u);
  const std::size_t inferred = sched.pump();
  EXPECT_EQ(inferred, 2u);
  EXPECT_EQ(sched.windows_shed(), staged - 2);
  // Every staged window was delivered exactly once (shed ones as NaN).
  EXPECT_EQ(a.windows_delivered(), staged);
  sched.drain();
  const auto report = a.finish();
  // Shed windows flow through the non-finite degradation path: their IMU
  // samples are dropped and every shed window is skipped as evidence (the
  // two real inferences — the newest windows, since shedding drops the
  // queue front — still contribute), never silently lost.
  EXPECT_GT(report.health.imu_samples_nonfinite, 0u);
  EXPECT_EQ(report.health.imu_windows_skipped, staged - 2);
}

}  // namespace
}  // namespace sb::stream
