#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/signature.hpp"
#include "obs/metrics.hpp"
#include "stream/fleet_server.hpp"
#include "stream/inference_scheduler.hpp"
#include "stream/rca_session.hpp"
#include "stream/streaming_extractor.hpp"
#include "util/rng.hpp"

namespace sb::stream {
namespace {

// A deterministic pseudo-random multichannel stream (not flight audio; the
// extractor is pure index arithmetic and never inspects the waveform).
acoustics::MultiChannelAudio noise_stream(std::size_t n, std::uint64_t seed) {
  acoustics::MultiChannelAudio a;
  Rng rng{seed};
  for (auto& ch : a.channels) {
    ch.resize(n);
    for (auto& x : ch) x = rng.normal(0.0, 1.0);
  }
  return a;
}

acoustics::MultiChannelAudio slice(const acoustics::MultiChannelAudio& full,
                                   std::size_t begin, std::size_t end) {
  acoustics::MultiChannelAudio chunk;
  chunk.sample_rate = full.sample_rate;
  for (std::size_t c = 0; c < sensors::kNumMics; ++c)
    chunk.channels[c].assign(full.channels[c].begin() + begin,
                             full.channels[c].begin() + end);
  return chunk;
}

std::vector<core::SensoryMapper::WindowAudio> push_in_chunks(
    StreamingFeatureExtractor& ex, const acoustics::MultiChannelAudio& full,
    std::size_t chunk_size) {
  std::vector<core::SensoryMapper::WindowAudio> out;
  for (std::size_t i = 0; i < full.num_samples(); i += chunk_size) {
    const std::size_t end = std::min(i + chunk_size, full.num_samples());
    for (auto& w : ex.push(slice(full, i, end))) out.push_back(std::move(w));
  }
  return out;
}

TEST(StreamingExtractor, EmitsTheOfflineWindowGrid) {
  StreamingExtractorConfig cfg;  // 16 kHz, settle 2, stride 0.5, window 0.5
  StreamingFeatureExtractor ex{cfg};
  const double duration = 6.3;
  const auto n = static_cast<std::size_t>(
      std::llround(duration * cfg.sample_rate));
  const auto full = noise_stream(n, 1);
  const auto windows = push_in_chunks(ex, full, 4096);

  const auto grid = core::window_grid(cfg.settle, cfg.stride,
                                      cfg.window_seconds, duration);
  ASSERT_EQ(windows.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_DOUBLE_EQ(windows[k].t0, grid[k].t0);
    EXPECT_DOUBLE_EQ(windows[k].t1, grid[k].t1);
    // The emitted audio is the verbatim stream slice at the synthesizer's
    // index convention: begin = llround(t0 * fs), length = llround(w * fs).
    const auto begin = static_cast<std::size_t>(
        std::llround(grid[k].t0 * cfg.sample_rate));
    ASSERT_EQ(windows[k].audio.num_samples(), ex.window_length());
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      for (std::size_t i = 0; i < ex.window_length(); ++i)
        ASSERT_EQ(windows[k].audio.channels[c][i], full.channels[c][begin + i])
            << "window " << k << " ch " << c << " sample " << i;
  }
}

TEST(StreamingExtractor, ChunkSizeIsIrrelevant) {
  StreamingExtractorConfig cfg;
  const auto n = static_cast<std::size_t>(std::llround(4.7 * cfg.sample_rate));
  const auto full = noise_stream(n, 2);

  StreamingFeatureExtractor whole{cfg};
  const auto ref = push_in_chunks(whole, full, n);  // one push
  ASSERT_FALSE(ref.empty());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{1000}, std::size_t{16000}}) {
    StreamingFeatureExtractor ex{cfg};
    const auto got = push_in_chunks(ex, full, chunk);
    ASSERT_EQ(got.size(), ref.size()) << "chunk " << chunk;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_DOUBLE_EQ(got[k].t0, ref[k].t0);
      for (std::size_t c = 0; c < sensors::kNumMics; ++c)
        ASSERT_EQ(got[k].audio.channels[c], ref[k].audio.channels[c])
            << "chunk " << chunk << " window " << k << " ch " << c;
    }
  }
}

TEST(StreamingExtractor, OverlappingStrideEmitsEveryGridWindow) {
  StreamingExtractorConfig cfg;
  cfg.stride = 0.25;  // windows overlap by half
  StreamingFeatureExtractor ex{cfg};
  const double duration = 5.0;
  const auto n = static_cast<std::size_t>(
      std::llround(duration * cfg.sample_rate));
  const auto full = noise_stream(n, 3);
  const auto windows = push_in_chunks(ex, full, 777);

  const auto grid = core::window_grid(cfg.settle, cfg.stride,
                                      cfg.window_seconds, duration);
  ASSERT_EQ(windows.size(), grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    EXPECT_DOUBLE_EQ(windows[k].t0, grid[k].t0);
    const auto begin = static_cast<std::size_t>(
        std::llround(grid[k].t0 * cfg.sample_rate));
    for (std::size_t c = 0; c < sensors::kNumMics; ++c)
      for (std::size_t i = 0; i < ex.window_length(); ++i)
        ASSERT_EQ(windows[k].audio.channels[c][i], full.channels[c][begin + i]);
  }
}

TEST(StreamingExtractor, BufferStaysBoundedOnLongStreams) {
  StreamingExtractorConfig cfg;
  StreamingFeatureExtractor ex{cfg};
  const std::size_t chunk = 1600;  // 100 ms
  const auto window_plus_stride = static_cast<std::size_t>(
      std::llround((cfg.window_seconds + cfg.stride) * cfg.sample_rate));
  std::size_t emitted = 0;
  for (int tick = 0; tick < 600; ++tick) {  // one minute of stream
    emitted += ex.push(noise_stream(chunk, 100 + tick)).size();
    EXPECT_LE(ex.buffered_samples(), window_plus_stride + chunk);
  }
  EXPECT_GT(emitted, 100u);
  EXPECT_EQ(ex.samples_pushed(), 600 * chunk);
}

TEST(StreamingExtractor, RejectsRaggedChunks) {
  StreamingFeatureExtractor ex{StreamingExtractorConfig{}};
  auto chunk = noise_stream(64, 4);
  chunk.channels[1].pop_back();
  EXPECT_THROW(ex.push(chunk), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Session + scheduler structure.  One tiny MLP trained on a single short
// flight is enough: these tests pin ordering, backpressure and error paths,
// not detection quality (that is the integration suite's job).

class StreamServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::SensoryMapperConfig cfg;
    cfg.model = ml::ModelKind::kMlp;
    cfg.dataset.stride = 0.5;
    cfg.train.epochs = 1;
    mapper_ = new core::SensoryMapper{cfg};
    lab_ = new core::FlightLab{};
    core::FlightScenario s;
    s.mission = sim::Mission::hover({0, 0, -10}, 10.0);
    s.seed = 99;
    flight_ = new core::Flight{lab_->fly(s)};
    const std::vector<core::Flight> flights{*flight_};
    mapper_->fit(*lab_, flights);
    audio_ = new acoustics::MultiChannelAudio{
        lab_->synthesizer(*flight_).synthesize(flight_->log, 0.0, 10.0)};
    // Calibrate both detector stages on the same flight — threshold quality
    // is irrelevant here, but sessions require calibrated detectors.
    imu_ = new core::ImuRcaDetector{core::ImuRcaConfig{}};
    gps_ = new core::GpsRcaDetector{core::GpsRcaConfig{}};
    const auto preds = mapper_->predict_flight(*lab_, *flight_);
    imu_->calibrate(core::ImuRcaDetector::residuals(*flight_, preds));
    for (const auto mode :
         {core::GpsDetectorMode::kAudioOnly, core::GpsDetectorMode::kAudioImu}) {
      const std::vector<core::GpsRcaDetector::Result> results{
          gps_->analyze(*flight_, preds, mode)};
      gps_->calibrate(results, mode);
    }
  }
  static void TearDownTestSuite() {
    delete gps_;
    delete imu_;
    delete audio_;
    delete flight_;
    delete lab_;
    delete mapper_;
  }

  RcaSession make_session(std::uint64_t id) {
    return RcaSession{id, *mapper_, *imu_, *gps_};
  }

  // Pushes the shared flight's streams into the session up to `seconds`.
  void feed(RcaSession& session, double seconds) {
    const auto upto = std::min(
        static_cast<std::size_t>(std::llround(seconds * audio_->sample_rate)),
        audio_->num_samples());
    session.push_audio(slice(*audio_, 0, upto));
    session.push_imu(flight_->log.imu);
    session.push_gps(flight_->log.gps);
  }

  // Incremental variant: pushes only the [t0, t1) stretch of every stream,
  // so a session can be fed in phases (checkpoint mid-flight, then resume).
  void feed_range(RcaSession& session, double t0, double t1) {
    const auto lo = std::min(
        static_cast<std::size_t>(std::llround(t0 * audio_->sample_rate)),
        audio_->num_samples());
    const auto hi = std::min(
        static_cast<std::size_t>(std::llround(t1 * audio_->sample_rate)),
        audio_->num_samples());
    if (hi > lo) session.push_audio(slice(*audio_, lo, hi));
    const auto& imu = flight_->log.imu;
    std::size_t ia = 0, ib = 0;
    while (ia < imu.size() && imu[ia].t < t0) ++ia;
    ib = ia;
    while (ib < imu.size() && imu[ib].t < t1) ++ib;
    session.push_imu(std::span{imu}.subspan(ia, ib - ia));
    const auto& gps = flight_->log.gps;
    std::size_t ga = 0, gb = 0;
    while (ga < gps.size() && gps[ga].t < t0) ++ga;
    gb = ga;
    while (gb < gps.size() && gps[gb].t < t1) ++gb;
    session.push_gps(std::span{gps}.subspan(ga, gb - ga));
  }

  static core::SensoryMapper* mapper_;
  static core::FlightLab* lab_;
  static core::Flight* flight_;
  static acoustics::MultiChannelAudio* audio_;
  static core::ImuRcaDetector* imu_;
  static core::GpsRcaDetector* gps_;
};

core::SensoryMapper* StreamServingTest::mapper_ = nullptr;
core::FlightLab* StreamServingTest::lab_ = nullptr;
core::Flight* StreamServingTest::flight_ = nullptr;
acoustics::MultiChannelAudio* StreamServingTest::audio_ = nullptr;
core::ImuRcaDetector* StreamServingTest::imu_ = nullptr;
core::GpsRcaDetector* StreamServingTest::gps_ = nullptr;

TEST_F(StreamServingTest, SessionRequiresTrainedMapper) {
  core::SensoryMapper untrained{core::SensoryMapperConfig{}};
  EXPECT_THROW(RcaSession(1, untrained, *imu_, *gps_), std::logic_error);
}

TEST_F(StreamServingTest, SchedulerRejectsDegenerateConfigAndDuplicateIds) {
  EXPECT_THROW(InferenceScheduler(*mapper_, {.max_batch = 0}),
               std::invalid_argument);
  EXPECT_THROW(InferenceScheduler(*mapper_, {.queue_capacity = 0}),
               std::invalid_argument);
  auto a = make_session(7);
  auto b = make_session(7);
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  EXPECT_THROW(sched.attach(b), std::invalid_argument);
}

TEST_F(StreamServingTest, DrainsAllSessionsAndDeliversInOrder) {
  auto a = make_session(2);
  auto b = make_session(1);
  const auto occupancy_before =
      obs::Registry::instance().histogram("stream.batch_occupancy").count();
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  sched.attach(b);
  feed(a, 8.0);
  feed(b, 8.0);
  ASSERT_GT(a.windows_staged(), 0u);
  sched.drain();
  EXPECT_EQ(sched.windows_shed(), 0u);
  EXPECT_EQ(sched.windows_inferred(), a.windows_staged() + b.windows_staged());
  EXPECT_EQ(a.windows_delivered(), a.windows_staged());
  EXPECT_EQ(b.windows_delivered(), b.windows_staged());
  // The scheduler surfaces its own load: one occupancy sample per batch,
  // each within [1, max_batch], and a live-session gauge.
  const auto occupancy =
      obs::Registry::instance().histogram("stream.batch_occupancy").snapshot();
  EXPECT_EQ(occupancy.count - occupancy_before, sched.batches_run());
  EXPECT_GE(occupancy.min, 1.0);
  EXPECT_LE(occupancy.max, 16.0);  // default max_batch
  EXPECT_EQ(obs::Registry::instance().gauge("stream.sessions_active").value(),
            2.0);
  // Verdict timestamps are monotonically non-decreasing per session.
  for (auto* s : {&a, &b}) {
    double last = 0.0;
    for (const auto& e : s->poll_verdicts()) {
      EXPECT_GE(e.decided_at, last);
      last = e.decided_at;
    }
    const auto report = s->finish();
    EXPECT_GT(report.health.windows_total, 0u);
  }
}

TEST_F(StreamServingTest, OverflowShedsOldestAndEngagesDegradation) {
  auto a = make_session(1);
  // Capacity 2: staging a whole flight's windows at once forces shedding,
  // and the shed windows must be the OLDEST staged ones.
  InferenceScheduler sched{*mapper_, {.max_batch = 2, .queue_capacity = 2}};
  sched.attach(a);
  feed(a, 10.0);
  const std::size_t staged = a.windows_staged();
  ASSERT_GT(staged, 4u);
  const std::size_t inferred = sched.pump();
  EXPECT_EQ(inferred, 2u);
  EXPECT_EQ(sched.windows_shed(), staged - 2);
  // Every staged window was delivered exactly once (shed ones as NaN).
  EXPECT_EQ(a.windows_delivered(), staged);
  sched.drain();
  const auto report = a.finish();
  // Shed windows flow through the non-finite degradation path: their IMU
  // samples are dropped and every shed window is skipped as evidence (the
  // two real inferences — the newest windows, since shedding drops the
  // queue front — still contribute), never silently lost.
  EXPECT_GT(report.health.imu_samples_nonfinite, 0u);
  EXPECT_EQ(report.health.imu_windows_skipped, staged - 2);
}

// ---------------------------------------------------------------------------
// Detach / bounded drain (migration + overload-robustness surfaces).

TEST_F(StreamServingTest, DetachRejectsUnknownAndInFlightSessions) {
  auto a = make_session(11);
  auto b = make_session(12);
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  EXPECT_THROW(sched.detach(b), std::invalid_argument);
  feed(a, 6.0);
  ASSERT_GT(a.windows_staged(), a.windows_delivered());
  // In-flight windows would be stranded by a detach — refuse loudly.
  EXPECT_THROW(sched.detach(a), std::logic_error);
  sched.drain();
  sched.detach(a);
  EXPECT_EQ(sched.sessions_attached(), 0u);
  EXPECT_THROW(sched.detach(a), std::invalid_argument);
}

TEST_F(StreamServingTest, DetachedSessionMigratesToAnotherScheduler) {
  auto a = make_session(13);
  InferenceScheduler first{*mapper_};
  first.attach(a);
  feed_range(a, 0.0, 5.0);
  first.drain();
  first.detach(a);
  // The second scheduler picks the session up mid-flight and serves the
  // rest; the session never notices the migration.
  InferenceScheduler second{*mapper_};
  second.attach(a);
  feed_range(a, 5.0, 10.0);
  second.drain();
  EXPECT_EQ(a.windows_delivered(), a.windows_staged());
  EXPECT_GT(second.windows_inferred(), 0u);
  const auto report = a.finish();
  EXPECT_GT(report.health.windows_total, 0u);
}

TEST_F(StreamServingTest, BoundedDrainAbortsOnExcessProgress) {
  auto a = make_session(14);
  InferenceScheduler sched{*mapper_, {.max_batch = 2}};
  sched.attach(a);
  feed(a, 10.0);
  ASSERT_GT(a.windows_staged(), 3u);
  const auto aborts_before =
      obs::Registry::instance().counter("stream.drain_aborts").value();
  // A one-window budget cannot cover the backlog: the drain must terminate
  // anyway (returning false) instead of looping, and count the abort.
  EXPECT_FALSE(sched.drain(1));
  EXPECT_EQ(obs::Registry::instance().counter("stream.drain_aborts").value(),
            aborts_before + 1);
  // An adequate budget (the default: the current backlog) finishes the job.
  EXPECT_TRUE(sched.drain());
  EXPECT_EQ(a.windows_delivered(), a.windows_staged());
}

// ---------------------------------------------------------------------------
// Evidence thinning (degraded admissions).

TEST_F(StreamServingTest, EvidenceThinningDeliversEveryWindowWithoutInference) {
  RcaSessionConfig config;
  config.evidence_stride = 2;
  RcaSession a{15, *mapper_, *imu_, *gps_, config};
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  feed(a, 10.0);
  const std::size_t staged = a.windows_staged();
  ASSERT_GT(staged, 4u);
  sched.drain();
  // Every window is delivered in seq order; the off-stride ones as NaN
  // without consuming inference capacity.
  EXPECT_EQ(a.windows_delivered(), staged);
  const std::size_t expect_inferred = (staged + 1) / 2;  // seq 0, 2, 4, ...
  EXPECT_EQ(sched.windows_inferred(), expect_inferred);
  EXPECT_EQ(sched.windows_thinned(), staged - expect_inferred);
  EXPECT_EQ(sched.windows_shed(), 0u);
  const auto report = a.finish();
  // Thinned windows flow through the same degradation accounting as shed
  // ones: skipped as IMU evidence, never silently lost.
  EXPECT_GE(report.health.imu_windows_skipped, staged - expect_inferred);
}

// ---------------------------------------------------------------------------
// Checkpoint / restore (SBSESS01).

std::string slurp(const std::string& path) {
  std::ifstream is{path, std::ios::binary};
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream os{path, std::ios::binary};
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(StreamServingTest, CheckpointRequiresQuiescence) {
  auto a = make_session(16);
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  feed(a, 6.0);
  ASSERT_GT(a.windows_staged(), a.windows_delivered());
  const std::string path = ::testing::TempDir() + "sb_quiescence.sbsess";
  EXPECT_THROW(a.checkpoint(path), std::logic_error);
  sched.drain();
  EXPECT_TRUE(a.checkpoint(path));
  std::uint64_t id = 0;
  EXPECT_TRUE(RcaSession::peek_checkpoint_id(path, &id));
  EXPECT_EQ(id, 16u);
  sched.detach(a);
  a.finish();
  EXPECT_THROW(a.checkpoint(path), std::logic_error);
}

TEST_F(StreamServingTest, CheckpointRejectsCorruptFiles) {
  auto a = make_session(17);
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  feed(a, 6.0);
  sched.drain();
  const std::string path = ::testing::TempDir() + "sb_corrupt.sbsess";
  ASSERT_TRUE(a.checkpoint(path));
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 64u);

  auto& rejected = obs::Registry::instance().counter("stream.checkpoint_rejected");
  const auto rejected_before = rejected.value();
  std::size_t attempts = 0;
  const auto expect_rejected = [&](std::string corrupt, const char* what) {
    spew(path, corrupt);
    EXPECT_EQ(RcaSession::restore(path, *mapper_, *imu_, *gps_), nullptr)
        << what;
    ++attempts;
  };
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{10}})
    expect_rejected(bytes.substr(0, keep), "truncated file");
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  expect_rejected(flipped, "bit flip in the payload");
  std::string magic = bytes;
  magic[0] ^= 0xFF;
  expect_rejected(magic, "foreign magic");
  std::string version = bytes;
  version[8] ^= 0xFF;  // format version lives right after the 8-byte magic
  expect_rejected(version, "version skew");
  EXPECT_EQ(rejected.value(), rejected_before + attempts);

  // The pristine bytes still restore — the harness, not the format, was
  // rejecting above.
  spew(path, bytes);
  const auto restored = RcaSession::restore(path, *mapper_, *imu_, *gps_);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->id(), 17u);
}

void expect_same_verdicts(const std::vector<VerdictEvent>& x,
                          const std::vector<VerdictEvent>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].kind, y[i].kind) << "event " << i;
    EXPECT_EQ(x[i].decided_at, y[i].decided_at) << "event " << i;
    EXPECT_EQ(x[i].imu_attacked, y[i].imu_attacked) << "event " << i;
    EXPECT_EQ(x[i].gps_mode, y[i].gps_mode) << "event " << i;
    EXPECT_EQ(x[i].imu.score, y[i].imu.score) << "event " << i;
    EXPECT_EQ(x[i].imu.flagged, y[i].imu.flagged) << "event " << i;
    EXPECT_EQ(x[i].gps.running_mean_err, y[i].gps.running_mean_err)
        << "event " << i;
    EXPECT_EQ(x[i].gps.pos_dev, y[i].gps.pos_dev) << "event " << i;
    EXPECT_EQ(x[i].gps.alert, y[i].gps.alert) << "event " << i;
  }
}

void expect_same_reports(const core::RcaReport& x, const core::RcaReport& y) {
  EXPECT_EQ(x.imu_attacked, y.imu_attacked);
  EXPECT_EQ(x.imu_detect_time, y.imu_detect_time);
  EXPECT_EQ(x.gps_attacked, y.gps_attacked);
  EXPECT_EQ(x.gps_detect_time, y.gps_detect_time);
  EXPECT_EQ(x.gps_mode_used, y.gps_mode_used);
  EXPECT_EQ(x.health.windows_total, y.health.windows_total);
  EXPECT_EQ(x.health.imu_samples_total, y.health.imu_samples_total);
  EXPECT_EQ(x.health.imu_windows_skipped, y.health.imu_windows_skipped);
  EXPECT_EQ(x.health.gps_fixes_total, y.health.gps_fixes_total);
  EXPECT_EQ(x.health.gps_coast_seconds, y.health.gps_coast_seconds);
}

TEST_F(StreamServingTest, CheckpointRestoreResumesBitwise) {
  // Control: one uninterrupted session over the whole flight, fed in the
  // same two phases.
  auto control = make_session(18);
  InferenceScheduler control_sched{*mapper_};
  control_sched.attach(control);
  feed_range(control, 0.0, 5.0);
  control_sched.drain();
  auto control_events = control.poll_verdicts();
  feed_range(control, 5.0, 10.0);
  control_sched.drain();
  for (auto& e : control.poll_verdicts()) control_events.push_back(e);

  // Subject: checkpoint at the phase boundary, restore into a NEW session
  // object on a NEW scheduler, serve the identical second phase.
  auto subject = make_session(18);
  InferenceScheduler before_sched{*mapper_};
  before_sched.attach(subject);
  feed_range(subject, 0.0, 5.0);
  before_sched.drain();
  auto subject_events = subject.poll_verdicts();
  const std::string path = ::testing::TempDir() + "sb_resume.sbsess";
  ASSERT_TRUE(subject.checkpoint(path));

  const auto resumed = RcaSession::restore(path, *mapper_, *imu_, *gps_);
  ASSERT_NE(resumed, nullptr);
  InferenceScheduler after_sched{*mapper_};
  after_sched.attach(*resumed);
  feed_range(*resumed, 5.0, 10.0);
  after_sched.drain();
  for (auto& e : resumed->poll_verdicts()) subject_events.push_back(e);

  expect_same_verdicts(control_events, subject_events);
  const auto expected = control.finish();
  const auto actual = resumed->finish();
  expect_same_reports(expected, actual);
}

// ---------------------------------------------------------------------------
// Fleet server: shard assignment, admission control, migration.

TEST(FleetShard, AssignmentIsPureDeterministicAndCovers) {
  for (const std::uint64_t id : {0ull, 1ull, 42ull, 1ull << 63}) {
    EXPECT_EQ(FleetServer::shard_of(id, 4), FleetServer::shard_of(id, 4));
    EXPECT_LT(FleetServer::shard_of(id, 4), 4u);
    EXPECT_EQ(FleetServer::shard_of(id, 1), 0u);
  }
  // Dense id ranges (the common fleet pattern) must spread across shards,
  // not stripe into one.
  std::vector<std::size_t> hits(4, 0);
  for (std::uint64_t id = 0; id < 256; ++id)
    ++hits[FleetServer::shard_of(id, 4)];
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_GT(hits[k], 16u) << "shard " << k;
}

TEST_F(StreamServingTest, FleetAdmissionAdmitsDegradesAndRejects) {
  FleetServerConfig config;
  config.num_shards = 2;
  config.max_sessions_per_shard = 2;
  config.degrade_sessions_per_shard = 1;
  config.degraded_evidence_stride = 3;
  FleetServer fleet{*mapper_, *imu_, *gps_, config};

  // Three ids that land on the SAME shard exercise all three verdicts in
  // admission order.
  std::vector<std::uint64_t> ids;
  const std::size_t shard = FleetServer::shard_of(100, 2);
  for (std::uint64_t id = 100; ids.size() < 3; ++id)
    if (FleetServer::shard_of(id, 2) == shard) ids.push_back(id);

  const auto first = fleet.admit(ids[0]);
  EXPECT_EQ(first.verdict, Admission::kAdmitted);
  EXPECT_EQ(first.shard, shard);
  ASSERT_NE(first.session, nullptr);
  EXPECT_EQ(first.session->config().evidence_stride, 1u);

  const auto second = fleet.admit(ids[1]);
  EXPECT_EQ(second.verdict, Admission::kDegraded);
  ASSERT_NE(second.session, nullptr);
  EXPECT_EQ(second.session->config().evidence_stride, 3u);

  const auto third = fleet.admit(ids[2]);
  EXPECT_EQ(third.verdict, Admission::kRejected);
  EXPECT_EQ(third.session, nullptr);

  EXPECT_THROW(fleet.admit(ids[0]), std::invalid_argument);
  EXPECT_EQ(fleet.find(ids[0]), first.session);
  EXPECT_EQ(fleet.find(ids[2]), nullptr);
  EXPECT_EQ(fleet.sessions_live(), 2u);
}

TEST_F(StreamServingTest, FleetServingMatchesShardedStandaloneBitwise) {
  // Reference: standalone schedulers with the SAME session->shard mapping
  // and pump pattern as the fleet, serving serially on the shared trained
  // mapper.  The fleet adds per-shard mapper clones, parallel shard pumps
  // and scoped metrics on top — none of which may change a single bit of
  // any verdict.  (Queue composition must match between the two sides: GPS
  // fix->window attribution legitimately depends on how deliveries
  // interleave with pushes, so comparing different queueing layouts — e.g.
  // one shared queue vs shards — compares different serving schedules.)
  constexpr std::size_t kShards = 3;
  FleetServerConfig config;
  config.num_shards = kShards;
  FleetServer fleet{*mapper_, *imu_, *gps_, config};
  const std::vector<std::uint64_t> ids{1, 2, 3, 4};
  std::vector<RcaSession*> fleet_sessions;
  for (const auto id : ids)
    fleet_sessions.push_back(fleet.admit(id).session);

  std::vector<RcaSession> solo_sessions;
  solo_sessions.reserve(ids.size());
  for (const auto id : ids) solo_sessions.push_back(make_session(id));
  std::vector<InferenceScheduler> solo_shards;
  solo_shards.reserve(kShards);
  for (std::size_t k = 0; k < kShards; ++k) solo_shards.emplace_back(*mapper_);
  for (std::size_t i = 0; i < ids.size(); ++i)
    solo_shards[FleetServer::shard_of(ids[i], kShards)].attach(
        solo_sessions[i]);

  for (const double t : {2.5, 5.0, 7.5, 10.0}) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      feed_range(*fleet_sessions[i], t - 2.5, t);
      feed_range(solo_sessions[i], t - 2.5, t);
    }
    fleet.pump();
    for (auto& sched : solo_shards) sched.pump();
  }
  EXPECT_TRUE(fleet.drain());
  for (auto& sched : solo_shards) sched.drain();
  EXPECT_EQ(fleet.windows_shed(), 0u);

  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_same_verdicts(solo_sessions[i].poll_verdicts(),
                         fleet_sessions[i]->poll_verdicts());
    const auto solo_report = solo_sessions[i].finish();
    const auto fleet_report = fleet.finish(ids[i]);
    expect_same_reports(solo_report, fleet_report);
  }
  EXPECT_EQ(fleet.sessions_live(), 0u);
}

TEST_F(StreamServingTest, FleetRestoreMigratesSessionsAcrossShardLayouts) {
  // Checkpoint from a standalone scheduler (a "one-shard" server)...
  auto a = make_session(19);
  InferenceScheduler sched{*mapper_};
  sched.attach(a);
  feed_range(a, 0.0, 5.0);
  sched.drain();
  const std::string path = ::testing::TempDir() + "sb_migrate.sbsess";
  ASSERT_TRUE(a.checkpoint(path));

  // ...and restore into a fleet that shards differently: the session lands
  // on whichever shard its id maps to and resumes there.
  FleetServerConfig config;
  config.num_shards = 4;
  FleetServer fleet{*mapper_, *imu_, *gps_, config};
  const auto res = fleet.restore(path);
  ASSERT_NE(res.session, nullptr);
  EXPECT_EQ(res.shard, FleetServer::shard_of(19, 4));
  EXPECT_EQ(fleet.find(19), res.session);
  // A second restore of the same id must not silently fork the session.
  EXPECT_THROW(fleet.restore(path), std::invalid_argument);

  feed_range(*res.session, 5.0, 10.0);
  fleet.pump();
  EXPECT_TRUE(fleet.drain());
  const auto report = fleet.finish(19);
  EXPECT_GT(report.health.windows_total, 0u);

  // A corrupt file is rejected, not attached.
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x10;
  spew(path, bytes);
  const auto rejected = fleet.restore(path);
  EXPECT_EQ(rejected.verdict, Admission::kRejected);
  EXPECT_EQ(rejected.session, nullptr);
}

}  // namespace
}  // namespace sb::stream
