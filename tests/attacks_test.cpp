#include <gtest/gtest.h>

#include <cmath>

#include "attacks/actuator_attack.hpp"
#include "attacks/gps_spoofing.hpp"
#include "attacks/imu_attack.hpp"
#include "attacks/sound_attack.hpp"
#include "dsp/spectrogram.hpp"
#include "util/stats.hpp"

namespace sb::attacks {
namespace {

TEST(GpsSpoof, InactiveOutsideWindow) {
  GpsSpoofConfig cfg;
  cfg.mode = GpsSpoofMode::kStatic;
  cfg.start = 10.0;
  cfg.end = 20.0;
  cfg.spoof_pos = {100, 0, 0};
  GpsSpoofAttack attack{cfg, Rng{1}};
  sim::GpsSample s;
  s.t = 5.0;
  s.pos = {1, 2, 3};
  attack.apply(s, {1, 2, 3}, {});
  EXPECT_DOUBLE_EQ(s.pos.x, 1.0);
  s.t = 25.0;
  attack.apply(s, {1, 2, 3}, {});
  EXPECT_DOUBLE_EQ(s.pos.x, 1.0);
}

TEST(GpsSpoof, StaticModeReportsSpoofLocation) {
  GpsSpoofConfig cfg;
  cfg.mode = GpsSpoofMode::kStatic;
  cfg.start = 0.0;
  cfg.end = 100.0;
  cfg.spoof_pos = {50, -20, -10};
  cfg.residual_noise = 0.1;
  GpsSpoofAttack attack{cfg, Rng{2}};
  sim::GpsSample s;
  s.t = 10.0;
  attack.apply(s, {0, 0, -10}, {3, 0, 0});
  EXPECT_NEAR(s.pos.x, 50.0, 1.0);
  // A static spoof reports near-zero velocity regardless of true motion.
  EXPECT_NEAR(s.vel.norm(), 0.0, 0.5);
}

TEST(GpsSpoof, DragModeRampsOffset) {
  GpsSpoofConfig cfg;
  cfg.mode = GpsSpoofMode::kDrag;
  cfg.start = 0.0;
  cfg.end = 100.0;
  cfg.drag_direction = {1, 0, 0};
  cfg.drag_rate = 1.0;
  cfg.residual_noise = 0.0;
  cfg.vel_noise = 0.0;
  GpsSpoofAttack attack{cfg, Rng{3}};
  sim::GpsSample s;
  s.t = 10.0;
  attack.apply(s, {5, 0, -10}, {});
  EXPECT_NEAR(s.pos.x, 15.0, 1e-9);  // 10 s * 1 m/s offset

  // While ramping, the reported velocity hides the induced drift.
  EXPECT_NEAR(s.vel.x, 1.0, 1e-9);
}

TEST(GpsSpoof, DragOffsetIsCapped) {
  GpsSpoofConfig cfg;
  cfg.mode = GpsSpoofMode::kDrag;
  cfg.start = 0.0;
  cfg.end = 1000.0;
  cfg.drag_rate = 1.0;
  cfg.max_offset = 30.0;
  cfg.residual_noise = 0.0;
  cfg.vel_noise = 0.0;
  GpsSpoofAttack attack{cfg, Rng{4}};
  sim::GpsSample s;
  s.t = 500.0;
  attack.apply(s, {0, 0, 0}, {});
  EXPECT_NEAR(s.pos.x, 30.0, 1e-9);
  EXPECT_NEAR(s.vel.x, 0.0, 1e-9);  // ramp finished -> velocity consistent
}

TEST(GpsSpoof, DragDirectionIsNormalized) {
  GpsSpoofConfig cfg;
  cfg.mode = GpsSpoofMode::kDrag;
  cfg.start = 0.0;
  cfg.end = 100.0;
  cfg.drag_direction = {3, 4, 0};  // unnormalized
  cfg.drag_rate = 1.0;
  cfg.residual_noise = 0.0;
  cfg.vel_noise = 0.0;
  GpsSpoofAttack attack{cfg, Rng{5}};
  sim::GpsSample s;
  s.t = 5.0;
  attack.apply(s, {}, {});
  EXPECT_NEAR(s.pos.norm(), 5.0, 1e-9);
}

TEST(ImuAttack, SideSwingRampsGyroBias) {
  ImuAttackConfig cfg;
  cfg.type = ImuAttackType::kSideSwing;
  cfg.start = 0.0;
  cfg.end = 100.0;
  cfg.axis = 0;
  cfg.swing_bias = 0.2;
  cfg.ramp_time = 4.0;
  ImuBiasAttack attack{cfg, Rng{6}};
  sim::ImuSample s;
  s.t = 2.0;  // halfway through the ramp
  attack.apply(s);
  EXPECT_NEAR(s.gyro.x, 0.1, 1e-9);
  sim::ImuSample s2;
  s2.t = 50.0;  // full bias
  attack.apply(s2);
  EXPECT_NEAR(s2.gyro.x, 0.2, 1e-9);
}

TEST(ImuAttack, SideSwingIsPositiveBiased) {
  // The Side-Swing attack amplifies output in a TARGET direction (never
  // symmetric noise).
  ImuAttackConfig cfg;
  cfg.type = ImuAttackType::kSideSwing;
  cfg.start = 0.0;
  cfg.end = 100.0;
  ImuBiasAttack attack{cfg, Rng{7}};
  for (double t = 4.0; t < 50.0; t += 1.0) {
    sim::ImuSample s;
    s.t = t;
    attack.apply(s);
    EXPECT_GT(s.gyro.x, 0.0);
  }
}

TEST(ImuAttack, InactiveOutsideWindow) {
  ImuAttackConfig cfg;
  cfg.start = 10.0;
  cfg.end = 20.0;
  ImuBiasAttack attack{cfg, Rng{8}};
  sim::ImuSample s;
  s.t = 5.0;
  attack.apply(s);
  EXPECT_DOUBLE_EQ(s.gyro.norm(), 0.0);
  EXPECT_DOUBLE_EQ(s.specific_force.norm(), 0.0);
}

TEST(ImuAttack, DosOscillatesZeroMean) {
  ImuAttackConfig cfg;
  cfg.type = ImuAttackType::kAccelDos;
  cfg.start = 0.0;
  cfg.end = 1000.0;
  ImuBiasAttack attack{cfg, Rng{9}};
  RunningStats z;
  for (double t = 0.0; t < 100.0; t += 0.005) {
    sim::ImuSample s;
    s.t = t;
    attack.apply(s);
    z.add(s.specific_force.z);
  }
  // Oscillatory disruption: near-zero mean but large spread (the paper notes
  // the injected signal "contributes almost equivalently to both directions").
  EXPECT_NEAR(z.mean(), 0.0, 0.15);
  EXPECT_GT(z.stddev(), 1.0);
}

TEST(ImuAttack, DosKeepsGyroIntact) {
  ImuAttackConfig cfg;
  cfg.type = ImuAttackType::kAccelDos;
  cfg.start = 0.0;
  cfg.end = 100.0;
  ImuBiasAttack attack{cfg, Rng{10}};
  sim::ImuSample s;
  s.t = 1.0;
  attack.apply(s);
  EXPECT_DOUBLE_EQ(s.gyro.norm(), 0.0);
}

acoustics::MultiChannelAudio tone_audio(double freq, double amp = 1.0) {
  acoustics::MultiChannelAudio audio;
  audio.sample_rate = 16000.0;
  for (auto& ch : audio.channels) {
    ch.resize(8000);
    for (std::size_t i = 0; i < ch.size(); ++i)
      ch[i] = amp * std::sin(2.0 * M_PI * freq * static_cast<double>(i) / 16000.0);
  }
  return audio;
}

double aero_band_level(const acoustics::MultiChannelAudio& audio, int channel) {
  dsp::StftConfig cfg;
  cfg.frame_size = 1024;
  cfg.hop_size = 512;
  cfg.sample_rate = audio.sample_rate;
  const auto spec =
      dsp::stft(audio.channels[static_cast<std::size_t>(channel)], cfg);
  const auto amps = dsp::band_amplitude_over_time(spec, 4500, 6000);
  double s = 0;
  for (std::size_t i = 2; i < amps.size(); ++i) s += amps[i];
  return s / static_cast<double>(amps.size() - 2);
}

TEST(SoundAttack, CancelReducesAeroBand) {
  auto audio = tone_audio(5250.0);
  const double before = aero_band_level(audio, 0);
  PhaseSyncSoundAttackConfig cfg;
  cfg.amplitude_factor = 0.0;  // full cancellation
  cfg.channels = {0};
  apply_phase_sync_attack(audio, cfg);
  EXPECT_LT(aero_band_level(audio, 0), before * 0.2);
}

TEST(SoundAttack, AmplifyIncreasesAeroBand) {
  auto audio = tone_audio(5250.0);
  const double before = aero_band_level(audio, 1);
  PhaseSyncSoundAttackConfig cfg;
  cfg.amplitude_factor = 2.0;
  cfg.channels = {1};
  apply_phase_sync_attack(audio, cfg);
  EXPECT_NEAR(aero_band_level(audio, 1) / before, 2.0, 0.3);
}

TEST(SoundAttack, UntouchedChannelsUnchanged) {
  auto audio = tone_audio(5250.0);
  const auto original = audio.channels[2];
  PhaseSyncSoundAttackConfig cfg;
  cfg.amplitude_factor = 0.0;
  cfg.channels = {0, 1};
  apply_phase_sync_attack(audio, cfg);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_DOUBLE_EQ(audio.channels[2][i], original[i]);
}

TEST(SoundAttack, OutOfBandContentSurvivesCancellation) {
  // The phase-synced attack targets the aerodynamic band only; the blade
  // passing tone must pass through unharmed.
  auto audio = tone_audio(250.0);
  const auto original = audio.channels[0];
  PhaseSyncSoundAttackConfig cfg;
  cfg.amplitude_factor = 0.0;
  cfg.channels = {0};
  apply_phase_sync_attack(audio, cfg);
  double diff = 0, energy = 0;
  for (std::size_t i = 1000; i < original.size(); ++i) {
    diff += std::abs(audio.channels[0][i] - original[i]);
    energy += std::abs(original[i]);
  }
  EXPECT_LT(diff, 0.1 * energy);
}

TEST(SoundAttack, NoOpFactorLeavesAudioExactly) {
  auto audio = tone_audio(5250.0);
  const auto original = audio.channels[0];
  PhaseSyncSoundAttackConfig cfg;
  cfg.amplitude_factor = 1.0;
  cfg.channels = {0, 1, 2, 3};
  apply_phase_sync_attack(audio, cfg);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_DOUBLE_EQ(audio.channels[0][i], original[i]);
}

TEST(SoundAttack, InvalidChannelsIgnored) {
  auto audio = tone_audio(5250.0);
  PhaseSyncSoundAttackConfig cfg;
  cfg.amplitude_factor = 0.0;
  cfg.channels = {-1, 7};
  EXPECT_NO_THROW(apply_phase_sync_attack(audio, cfg));
}

TEST(ActuatorDos, BlockWaveTiming) {
  ActuatorDosConfig cfg;
  cfg.start = 10.0;
  cfg.end = 20.0;
  cfg.period = 1.0;
  cfg.duty = 0.4;
  ActuatorDosAttack attack{cfg};
  EXPECT_FALSE(attack.blocking(9.9));   // before the attack
  EXPECT_TRUE(attack.blocking(10.1));   // first block phase
  EXPECT_FALSE(attack.blocking(10.7));  // pass phase
  EXPECT_TRUE(attack.blocking(11.2));   // next period
  EXPECT_FALSE(attack.blocking(20.5));  // after the attack
}

TEST(ActuatorDos, OnlyAffectsConfiguredRotors) {
  ActuatorDosConfig cfg;
  cfg.start = 0.0;
  cfg.end = 100.0;
  cfg.duty = 1.0;  // always blocking while active
  ActuatorDosAttack attack{cfg};
  sim::RotorCommand cmd{800, 810, 820, 830};
  attack.apply(5.0, cmd, 150.0);
  EXPECT_DOUBLE_EQ(cmd[0], 150.0);
  EXPECT_DOUBLE_EQ(cmd[1], 150.0);
  EXPECT_DOUBLE_EQ(cmd[2], 820.0);
  EXPECT_DOUBLE_EQ(cmd[3], 830.0);
}

TEST(ActuatorDos, NoOpOutsidePhase) {
  ActuatorDosConfig cfg;
  cfg.start = 0.0;
  cfg.end = 100.0;
  cfg.period = 1.0;
  cfg.duty = 0.5;
  ActuatorDosAttack attack{cfg};
  sim::RotorCommand cmd{800, 810, 820, 830};
  attack.apply(0.75, cmd, 150.0);  // pass phase of the block wave
  EXPECT_DOUBLE_EQ(cmd[0], 800.0);
}

TEST(SoundAttack, ReplayAddsAttenuatedEnergy) {
  auto audio = tone_audio(5250.0, 0.0);  // silence
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  std::vector<double> recording(8000, 1.0);
  ReplayAttackConfig cfg;
  cfg.source_pos = {0, 0, -0.5};
  cfg.gain = 1.0;
  apply_replay_attack(audio, recording, cfg, geom);
  // Energy appears but strongly attenuated (~0.09 of source at 0.5 m).
  const double level = std::abs(audio.channels[0].back());
  EXPECT_GT(level, 0.02);
  EXPECT_LT(level, 0.2);
}

}  // namespace
}  // namespace sb::attacks
