#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/conv.hpp"
#include "ml/layers.hpp"
#include "ml/lstm.hpp"
#include "ml/model.hpp"
#include "ml/models.hpp"
#include "ml/neural_ode.hpp"
#include "ml/optimizer.hpp"
#include "ml/plan.hpp"
#include "ml/tensor.hpp"
#include "ml/trainer.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace sb::ml {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double scale = 1.0) {
  Tensor t{std::move(shape)};
  for (auto& v : t.flat()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

// Scalar loss: weighted sum of outputs with fixed pseudo-random weights.
// Returns (loss, dLoss/dOutput).
std::pair<double, Tensor> weighted_loss(const Tensor& out) {
  Tensor grad(out.shape());
  double loss = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    const double w = 0.3 + 0.7 * std::sin(static_cast<double>(i) * 1.7);
    loss += w * out[i];
    grad[i] = static_cast<float>(w);
  }
  return {loss, grad};
}

// Central-difference gradient check on the layer's input and parameters.
// `max_violations` tolerates a few mismatches: a parameter perturbation can
// push a ReLU pre-activation across its kink, where the numeric quotient is
// legitimately ~half the analytic one-sided derivative.
void check_gradients(Layer& layer, Tensor input, double eps = 1e-2,
                     double tol = 6e-2, int max_violations = 0) {
  int violations = 0;
  // Analytic gradients.
  for (Param* p : layer.params()) p->zero_grad();
  const Tensor out = layer.forward(input, true);
  const auto [loss, grad_out] = weighted_loss(out);
  (void)loss;
  const Tensor grad_in = layer.backward(grad_out);

  auto numeric_at = [&](float* slot) {
    const float saved = *slot;
    *slot = static_cast<float>(saved + eps);
    const auto [lp, g1] = weighted_loss(layer.forward(input, true));
    *slot = static_cast<float>(saved - eps);
    const auto [lm, g2] = weighted_loss(layer.forward(input, true));
    *slot = saved;
    (void)g1;
    (void)g2;
    return (lp - lm) / (2.0 * eps);
  };

  // Check a sample of input gradients.
  const std::size_t in_stride = std::max<std::size_t>(1, input.numel() / 12);
  for (std::size_t i = 0; i < input.numel(); i += in_stride) {
    const double num = numeric_at(&input[i]);
    const double ana = grad_in[i];
    if (std::abs(ana - num) > tol * std::max(1.0, std::abs(num))) {
      ++violations;
      EXPECT_LE(violations, max_violations)
          << "input grad at " << i << ": ana " << ana << " vs num " << num;
    }
  }

  // Check a sample of parameter gradients.  Re-run forward/backward to
  // repopulate caches for the unperturbed parameters.
  for (Param* p : layer.params()) p->zero_grad();
  layer.forward(input, true);
  layer.backward(grad_out);
  for (Param* p : layer.params()) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.numel() / 8);
    for (std::size_t i = 0; i < p->value.numel(); i += stride) {
      const double num = numeric_at(&p->value[i]);
      const double ana = p->grad[i];
      if (std::abs(ana - num) > tol * std::max(1.0, std::abs(num))) {
        ++violations;
        EXPECT_LE(violations, max_violations)
            << "param grad at " << i << ": ana " << ana << " vs num " << num;
      }
    }
  }
}

// The inference scheduler batches windows from many flights into one
// forward (model forwards are not reentrant), so serving correctness rests
// on batch-N inference being BITWISE identical to N single-row forwards —
// every per-row accumulation must be independent of its batch neighbours.
TEST(Models, BatchedForwardIsBitwiseSingleRowForward) {
  const ModelInputShape shape;
  constexpr std::size_t kBatch = 5;
  for (const ModelKind kind : {ModelKind::kMobileNetLite, ModelKind::kResNetLite,
                               ModelKind::kNeuralOde, ModelKind::kMlp}) {
    Rng rng{77};
    const auto model = make_model(kind, shape, 6, rng);
    const Tensor batch = random_tensor(
        {kBatch, shape.channels, shape.height, shape.width}, rng);
    const Tensor out = model->forward(batch, false);
    ASSERT_EQ(out.shape()[0], kBatch) << to_string(kind);

    // Row-at-a-time.
    for (std::size_t i = 0; i < kBatch; ++i) {
      const Tensor row = model->forward(batch.slice_rows(i, i + 1), false);
      ASSERT_EQ(row.numel(), out.numel() / kBatch) << to_string(kind);
      for (std::size_t d = 0; d < row.numel(); ++d)
        ASSERT_EQ(row[d], out[i * row.numel() + d])
            << to_string(kind) << " row " << i << " dim " << d;
    }

    // Arbitrary re-chunking (the scheduler's batches cut anywhere).
    const Tensor front = model->forward(batch.slice_rows(0, 3), false);
    const Tensor back = model->forward(batch.slice_rows(3, kBatch), false);
    for (std::size_t j = 0; j < front.numel(); ++j)
      ASSERT_EQ(front[j], out[j]) << to_string(kind);
    for (std::size_t j = 0; j < back.numel(); ++j)
      ASSERT_EQ(back[j], out[front.numel() + j]) << to_string(kind);
  }
}

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_FLOAT_EQ(t[5], 1.5f);
  t.fill(0.0f);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  const Tensor r = t.reshaped({4, 3});
  EXPECT_EQ(r.dim(0), 4u);
  EXPECT_FLOAT_EQ(r[7], 3.0f);
  EXPECT_THROW(t.reshaped({5, 2}), std::invalid_argument);
}

TEST(Tensor, SliceRows) {
  Tensor t({4, 2});
  for (std::size_t i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_FLOAT_EQ(s[0], 2.0f);
  EXPECT_FLOAT_EQ(s[3], 5.0f);
  EXPECT_THROW(t.slice_rows(3, 5), std::out_of_range);
}

TEST(Tensor, GatherRows) {
  Tensor t({3, 2});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const std::vector<std::size_t> idx{2, 0};
  const Tensor g = t.gather_rows(idx);
  EXPECT_FLOAT_EQ(g[0], 4.0f);
  EXPECT_FLOAT_EQ(g[2], 0.0f);
}

TEST(Tensor, HeNormalScale) {
  Rng rng{1};
  const Tensor t = Tensor::he_normal({1000}, 50, rng);
  double s = 0;
  for (float v : t.flat()) s += v * v;
  EXPECT_NEAR(std::sqrt(s / 1000.0), std::sqrt(2.0 / 50.0), 0.02);
}

TEST(GradCheck, Dense) {
  Rng rng{10};
  Dense layer{5, 4, rng};
  check_gradients(layer, random_tensor({3, 5}, rng));
}

TEST(GradCheck, ReLU) {
  Rng rng{11};
  ReLU layer;
  check_gradients(layer, random_tensor({4, 6}, rng));
}

TEST(GradCheck, ReLU6) {
  Rng rng{12};
  ReLU layer{6.0f};
  check_gradients(layer, random_tensor({4, 6}, rng, 4.0));
}

TEST(GradCheck, Tanh) {
  Rng rng{13};
  Tanh layer;
  check_gradients(layer, random_tensor({4, 6}, rng));
}

TEST(GradCheck, Conv2D) {
  Rng rng{14};
  Conv2D layer{2, 3, 3, 1, 1, rng};
  check_gradients(layer, random_tensor({2, 2, 5, 4}, rng));
}

TEST(GradCheck, Conv2DStride2) {
  Rng rng{15};
  Conv2D layer{2, 2, 3, 2, 1, rng};
  check_gradients(layer, random_tensor({1, 2, 6, 6}, rng));
}

TEST(GradCheck, DepthwiseConv2D) {
  Rng rng{16};
  DepthwiseConv2D layer{3, 3, 1, 1, rng};
  check_gradients(layer, random_tensor({2, 3, 4, 4}, rng));
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng{17};
  GlobalAvgPool layer;
  check_gradients(layer, random_tensor({2, 3, 4, 4}, rng));
}

TEST(GradCheck, BatchNormTrainMode) {
  Rng rng{18};
  BatchNorm layer{3};
  check_gradients(layer, random_tensor({4, 3, 3, 3}, rng), 1e-2, 0.12);
}

TEST(GradCheck, ResidualBlockIdentity) {
  Rng rng{19};
  ResidualBlock layer{3, 3, 1, rng};
  // BN + double ReLU stack: tolerate a few kink crossings.
  check_gradients(layer, random_tensor({2, 3, 4, 4}, rng), 5e-3, 0.15, 3);
}

TEST(GradCheck, ResidualBlockProjection) {
  Rng rng{20};
  ResidualBlock layer{2, 4, 2, rng};
  check_gradients(layer, random_tensor({2, 2, 4, 4}, rng), 5e-3, 0.15, 3);
}

TEST(GradCheck, Lstm) {
  Rng rng{21};
  Lstm layer{3, 4, 5, rng};
  check_gradients(layer, random_tensor({2, 5, 3}, rng), 1e-2, 0.1);
}

TEST(GradCheck, NeuralOdeBlock) {
  Rng rng{22};
  NeuralOdeBlock layer{4, 6, 4, rng};
  check_gradients(layer, random_tensor({3, 4}, rng), 1e-2, 0.1);
}

TEST(GradCheck, SequentialComposition) {
  Rng rng{23};
  Sequential seq;
  seq.emplace<Dense>(6, 5, rng);
  seq.emplace<Tanh>();
  seq.emplace<Dense>(5, 2, rng);
  check_gradients(seq, random_tensor({3, 6}, rng));
}

TEST(Layers, DropoutIsIdentityInEval) {
  Rng rng{24};
  Dropout d{0.5f, rng};
  const Tensor x = random_tensor({2, 10}, rng);
  const Tensor y = d.forward(x, false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Layers, DropoutScalesInTraining) {
  Rng rng{25};
  Dropout d{0.5f, rng};
  Tensor x({1, 10000}, 1.0f);
  const Tensor y = d.forward(x, true);
  double mean = 0;
  for (float v : y.flat()) mean += v;
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout preserves expectation
}

TEST(Layers, BatchNormNormalizesTrainBatch) {
  Rng rng{26};
  BatchNorm bn{2};
  Tensor x = random_tensor({8, 2, 4, 4}, rng, 5.0);
  const Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (std::size_t c = 0; c < 2; ++c) {
    double s = 0.0, ss = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < 8; ++i)
      for (std::size_t k = 0; k < 16; ++k) {
        const double v = y[(i * 2 + c) * 16 + k];
        s += v;
        ss += v * v;
        ++n;
      }
    EXPECT_NEAR(s / static_cast<double>(n), 0.0, 1e-3);
    EXPECT_NEAR(ss / static_cast<double>(n), 1.0, 1e-2);
  }
}

TEST(Layers, FlattenRoundTrip) {
  Flatten f;
  Rng rng{27};
  const Tensor x = random_tensor({2, 3, 4, 5}, rng);
  const Tensor y = f.forward(x, true);
  EXPECT_EQ(y.dim(1), 60u);
  const Tensor back = f.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(Loss, MseValueAndGradient) {
  Tensor pred({1, 2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  Tensor target({1, 2});
  target[0] = 0.0f;
  target[1] = 3.0f;
  const auto loss = mse_loss(pred, target);
  EXPECT_NEAR(loss.value, 0.5, 1e-6);
  EXPECT_NEAR(loss.grad[0], 1.0, 1e-6);  // 2*(1-0)/2
  EXPECT_NEAR(loss.grad[1], 0.0, 1e-6);
}

TEST(Optimizer, SgdReducesQuadratic) {
  Rng rng{28};
  Dense layer{1, 1, rng};
  Sgd opt{layer.params(), 0.1, 0.0};
  // Learn y = 2x.
  Tensor x({8, 1});
  Tensor y({8, 1});
  for (int i = 0; i < 8; ++i) {
    x[static_cast<std::size_t>(i)] = static_cast<float>(i - 4) / 4.0f;
    y[static_cast<std::size_t>(i)] = 2.0f * x[static_cast<std::size_t>(i)];
  }
  double first = -1;
  double last = 0;
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();
    const auto loss = mse_loss(layer.forward(x, true), y);
    layer.backward(loss.grad);
    opt.step();
    if (first < 0) first = loss.value;
    last = loss.value;
  }
  EXPECT_LT(last, first * 0.01);
}

TEST(Optimizer, AdamFitsLinearMap) {
  Rng rng{29};
  Dense layer{3, 2, rng};
  Adam opt{layer.params(), 0.05};
  Rng data_rng{30};
  double last = 1e9;
  for (int step = 0; step < 300; ++step) {
    Tensor x = random_tensor({16, 3}, data_rng);
    Tensor y({16, 2});
    for (std::size_t i = 0; i < 16; ++i) {
      y[i * 2 + 0] = x[i * 3 + 0] + 2.0f * x[i * 3 + 1];
      y[i * 2 + 1] = -x[i * 3 + 2];
    }
    opt.zero_grad();
    const auto loss = mse_loss(layer.forward(x, true), y);
    layer.backward(loss.grad);
    opt.step();
    last = loss.value;
  }
  EXPECT_LT(last, 0.01);
}

TEST(Optimizer, WeightDecayShrinksUnusedWeights) {
  Rng rng{31};
  Dense layer{1, 1, rng};
  layer.params()[0]->value[0] = 5.0f;
  Adam opt{layer.params(), 0.01, 0.9, 0.999, 1e-8, 0.5};
  Tensor x({1, 1}, 0.0f);  // zero input: only decay acts on the weight
  Tensor y({1, 1}, 0.0f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    const auto loss = mse_loss(layer.forward(x, true), y);
    layer.backward(loss.grad);
    opt.step();
  }
  EXPECT_LT(std::abs(layer.params()[0]->value[0]), 4.0f);
}

TEST(Trainer, SplitRespectsFraction) {
  RegressionDataset data;
  data.x = Tensor({100, 4});
  data.y = Tensor({100, 2});
  Rng rng{32};
  auto [train, val] = split_dataset(data, 0.2, rng);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(val.size(), 20u);
}

TEST(Trainer, LearnsSimpleRegression) {
  Rng rng{33};
  Sequential model;
  model.emplace<Dense>(2, 16, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(16, 1, rng);

  Rng data_rng{34};
  RegressionDataset data;
  data.x = random_tensor({256, 2}, data_rng);
  data.y = Tensor({256, 1});
  for (std::size_t i = 0; i < 256; ++i)
    data.y[i] = data.x[i * 2] * data.x[i * 2 + 1];  // xor-ish product

  Rng split_rng{35};
  auto [train, val] = split_dataset(data, 0.25, split_rng);
  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.lr = 0.01;
  cfg.weight_decay = 0.0;
  const auto result = train_regressor(model, train, val, cfg);
  EXPECT_LT(result.final_val_mse, 0.05);
  EXPECT_EQ(result.train_mse_per_epoch.size(), 60u);
}

TEST(Models, AllKindsForwardCorrectShape) {
  Rng rng{36};
  const ModelInputShape in{4, 14, 32};
  for (auto kind : {ModelKind::kMobileNetLite, ModelKind::kResNetLite,
                    ModelKind::kNeuralOde, ModelKind::kMlp}) {
    auto model = make_model(kind, in, 6, rng);
    Tensor x = random_tensor({2, 4, 14, 32}, rng, 0.5);
    const Tensor y = model->forward(x, false);
    EXPECT_EQ(y.dim(0), 2u) << to_string(kind);
    EXPECT_EQ(y.dim(1), 6u) << to_string(kind);
    for (float v : y.flat()) EXPECT_TRUE(std::isfinite(v)) << to_string(kind);
  }
}

TEST(Models, NamesAreStable) {
  EXPECT_EQ(to_string(ModelKind::kMobileNetLite), "MobileNetLite");
  EXPECT_EQ(to_string(ModelKind::kResNetLite), "ResNetLite");
  EXPECT_EQ(to_string(ModelKind::kNeuralOde), "NeuralODE");
}

TEST(Layers, BatchNormEvalUsesRunningStats) {
  Rng rng{38};
  BatchNorm bn{2};
  // Train-mode passes accumulate running statistics toward the batch stats.
  Tensor x = random_tensor({16, 2, 2, 2}, rng, 2.0);
  for (int i = 0; i < 200; ++i) bn.forward(x, true);
  const Tensor train_out = bn.forward(x, true);
  const Tensor eval_out = bn.forward(x, false);
  // After convergence the eval output matches the train output closely.
  double max_diff = 0;
  for (std::size_t i = 0; i < train_out.numel(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(train_out[i]) - eval_out[i]));
  EXPECT_LT(max_diff, 0.15);
}

TEST(Layers, BatchNormStateIsExposedForSerialization) {
  Rng rng{39};
  BatchNorm bn{3};
  EXPECT_EQ(bn.state().size(), 2u);  // running mean + running var
  Sequential seq;
  seq.emplace<Conv2D>(2, 3, 3, 1, 1, rng);
  seq.emplace<BatchNorm>(3);
  seq.emplace<DepthwiseSeparableBlock>(3, 4, 1, rng);  // two more BNs inside
  EXPECT_EQ(seq.state().size(), 2u + 4u);
}

TEST(Models, EvaluateMseMatchesManual) {
  Rng rng{37};
  Sequential model;
  model.emplace<Dense>(2, 1, rng);
  Tensor x = random_tensor({10, 2}, rng);
  Tensor y = random_tensor({10, 1}, rng);
  const double batched = evaluate_mse(model, x, y, 3);
  const auto pred = model.forward(x, false);
  double manual = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const double d = pred[i] - y[i];
    manual += d * d;
  }
  manual /= 10.0;
  EXPECT_NEAR(batched, manual, 1e-6);
}

// ---------------------------------------------------------------------------
// Compiled inference plan (ml/plan.hpp): the exact ("f64") plan must be
// BITWISE identical to the layer-graph eval forward — across model kinds,
// SIMD backends and thread counts — and the folded float32 plan must stay
// within a drift bound of it.

struct SimdBackendGuard {
  explicit SimdBackendGuard(util::SimdBackend b) : prev_(util::simd_backend()) {
    util::set_simd_backend(b);
  }
  ~SimdBackendGuard() { util::set_simd_backend(prev_); }
  util::SimdBackend prev_;
};

struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) { util::ThreadPool::set_threads(n); }
  ~ThreadCountGuard() { util::ThreadPool::set_threads(0); }
};

constexpr ModelKind kPlanKinds[] = {ModelKind::kMobileNetLite,
                                    ModelKind::kResNetLite,
                                    ModelKind::kNeuralOde, ModelKind::kMlp};

// Fresh model with NON-TRIVIAL BatchNorm running statistics: a few
// train-mode passes move every running mean/var off its (0, 1) init, so
// the plan's folding/fusing is exercised against real eval-affine values,
// not the identity transform.
std::unique_ptr<Layer> warmed_model(ModelKind kind, const ModelInputShape& in,
                                    Rng& rng) {
  auto model = make_model(kind, in, 6, rng);
  for (int i = 0; i < 3; ++i) {
    const Tensor batch =
        random_tensor({4, in.channels, in.height, in.width}, rng, 1.5);
    (void)model->forward(batch, true);
  }
  return model;
}

TEST(PlanEquivalence, ExactPlanIsBitwiseGraphForward) {
  const ModelInputShape in;
  for (const ModelKind kind : kPlanKinds) {
    Rng rng{91};
    const auto model = warmed_model(kind, in, rng);
    const Tensor batch =
        random_tensor({5, in.channels, in.height, in.width}, rng);
    const Tensor want = model->forward(batch, false);
    const auto plan = InferencePlan::compile(
        *model, {in.channels, in.height, in.width}, PlanPrecision::kF64);
    const struct {
      util::SimdBackend backend;
      std::size_t threads;
      const char* what;
    } runs[] = {
        {util::SimdBackend::kVector, 1, "vector/1"},
        {util::SimdBackend::kVector, 4, "vector/4"},
        {util::SimdBackend::kScalar, 1, "scalar/1"},
        {util::SimdBackend::kScalar, 4, "scalar/4"},
    };
    for (const auto& r : runs) {
      SimdBackendGuard simd{r.backend};
      ThreadCountGuard threads{r.threads};
      const Tensor got = plan->forward(batch);
      ASSERT_EQ(got.numel(), want.numel()) << to_string(kind);
      for (std::size_t i = 0; i < want.numel(); ++i)
        ASSERT_EQ(got[i], want[i])
            << to_string(kind) << " " << r.what << " dim " << i;
    }
  }
}

TEST(PlanEquivalence, PlanBatchChunkingIsBitwise) {
  const ModelInputShape in;
  constexpr std::size_t kBatch = 5;
  for (const ModelKind kind : kPlanKinds) {
    Rng rng{92};
    const auto model = warmed_model(kind, in, rng);
    const Tensor batch =
        random_tensor({kBatch, in.channels, in.height, in.width}, rng);
    const auto plan = InferencePlan::compile(
        *model, {in.channels, in.height, in.width}, PlanPrecision::kF64);
    const Tensor out = plan->forward(batch);
    // Row-at-a-time and arbitrary re-chunks: serving batches cut anywhere.
    for (std::size_t i = 0; i < kBatch; ++i) {
      const Tensor row = plan->forward(batch.slice_rows(i, i + 1));
      for (std::size_t d = 0; d < row.numel(); ++d)
        ASSERT_EQ(row[d], out[i * row.numel() + d])
            << to_string(kind) << " row " << i;
    }
    const Tensor front = plan->forward(batch.slice_rows(0, 3));
    const Tensor back = plan->forward(batch.slice_rows(3, kBatch));
    for (std::size_t j = 0; j < front.numel(); ++j)
      ASSERT_EQ(front[j], out[j]) << to_string(kind);
    for (std::size_t j = 0; j < back.numel(); ++j)
      ASSERT_EQ(back[j], out[front.numel() + j]) << to_string(kind);
  }
}

TEST(PlanEquivalence, F32FoldedPlanDriftIsBounded) {
  const ModelInputShape in;
  for (const ModelKind kind : kPlanKinds) {
    Rng rng{93};
    const auto model = warmed_model(kind, in, rng);
    const Tensor batch =
        random_tensor({6, in.channels, in.height, in.width}, rng);
    const Tensor want = model->forward(batch, false);
    const auto plan = InferencePlan::compile(
        *model, {in.channels, in.height, in.width}, PlanPrecision::kF32);
    const Tensor got = plan->forward(batch);
    ASSERT_EQ(got.numel(), want.numel()) << to_string(kind);
    // The fold rounds each folded weight exactly once, so the drift budget
    // has orders of magnitude of headroom on these O(1)-scale outputs.
    double mse = 0.0;
    for (std::size_t i = 0; i < want.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(got[i])) << to_string(kind);
      const double d = static_cast<double>(got[i]) - want[i];
      mse += d * d;
    }
    mse /= static_cast<double>(want.numel());
    EXPECT_LT(mse, 1e-8) << to_string(kind);
  }
}

TEST(PlanEquivalence, FoldFuseAndPackCountersTally) {
  const ModelInputShape in;
  Rng rng{94};
  // MobileNetLite: conv->BN->activation stacks throughout.  The f32 plan
  // folds every BN into its producer; the exact plan fuses them as
  // epilogues instead.  Both pack every weight panel and neither needs a
  // graph-call fallback.
  {
    const auto model = warmed_model(ModelKind::kMobileNetLite, in, rng);
    const auto fast = InferencePlan::compile(
        *model, {in.channels, in.height, in.width}, PlanPrecision::kF32);
    EXPECT_GT(fast->folded_batchnorms(), 0u);
    EXPECT_GT(fast->packed_panels(), 0u);
    EXPECT_EQ(fast->graph_fallback_ops(), 0u);
    const auto exact = InferencePlan::compile(
        *model, {in.channels, in.height, in.width}, PlanPrecision::kF64);
    EXPECT_EQ(exact->folded_batchnorms(), 0u);
    EXPECT_GT(exact->fused_activations(), 0u);
    EXPECT_EQ(exact->graph_fallback_ops(), 0u);
  }
  // NeuralODE: the ODE block opts out of compilation, so its plan carries
  // graph-call fallback ops (bitwise, just not fused).
  {
    const auto model = warmed_model(ModelKind::kNeuralOde, in, rng);
    const auto plan = InferencePlan::compile(
        *model, {in.channels, in.height, in.width}, PlanPrecision::kF64);
    EXPECT_GT(plan->graph_fallback_ops(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Data-parallel training engine (DESIGN.md "Training performance"): shard
// backward passes on replicas must recompose into the full-batch backward,
// and the fused optimizer step must match step-then-zero exactly.

// Runs a full batch through `full` and the same rows as two half-batch
// shards through replicas of `shard_src`, with the trainer's grad scaling
// (2 / batch_numel on every shard).  Input gradients must match row-for-row
// BITWISE — each row's backward never touches its batch neighbours.  Summed
// shard parameter gradients associate differently (per-shard partials added
// shard-ascending vs one batch-ascending sweep), so they match to tolerance.
void check_shard_backward_recomposition(Layer& full, const Layer& shard_src,
                                        const Tensor& x, const Tensor& y) {
  const std::size_t n = x.dim(0);
  const std::size_t half = n / 2;
  ASSERT_EQ(half * 2, n);

  for (Param* p : full.params()) p->zero_grad();
  const Tensor pred = full.forward(x, true);
  const float grad_scale = 2.0f / static_cast<float>(pred.numel());
  const ShardLoss batch_loss = shard_mse_loss(pred, y, grad_scale);
  const Tensor batch_grad_in = full.backward(batch_loss.grad);

  std::vector<float> shard_grad_in;
  std::vector<std::vector<double>> shard_param_grads;
  double shard_sq_err = 0.0;
  for (std::size_t s = 0; s < 2; ++s) {
    auto rep = shard_src.replicate();
    ASSERT_NE(rep, nullptr);
    for (Param* p : rep->params()) p->zero_grad();
    const Tensor sx = x.slice_rows(s * half, (s + 1) * half);
    const Tensor sy = y.slice_rows(s * half, (s + 1) * half);
    const Tensor sp = rep->forward(sx, true);
    const ShardLoss loss = shard_mse_loss(sp, sy, grad_scale);
    shard_sq_err += loss.sq_err;
    const Tensor gi = rep->backward(loss.grad);
    for (std::size_t i = 0; i < gi.numel(); ++i) shard_grad_in.push_back(gi[i]);
    const auto rp = rep->params();
    shard_param_grads.resize(rp.size());
    for (std::size_t j = 0; j < rp.size(); ++j) {
      shard_param_grads[j].resize(rp[j]->grad.numel(), 0.0);
      for (std::size_t i = 0; i < rp[j]->grad.numel(); ++i)
        shard_param_grads[j][i] += static_cast<double>(rp[j]->grad[i]);
    }
  }

  ASSERT_EQ(shard_grad_in.size(), batch_grad_in.numel());
  for (std::size_t i = 0; i < shard_grad_in.size(); ++i)
    ASSERT_EQ(shard_grad_in[i], batch_grad_in[i]) << "grad_in row element " << i;
  // Shard error sums associate differently from the one-sweep batch sum.
  EXPECT_NEAR(shard_sq_err, batch_loss.sq_err,
              1e-12 * std::max(1.0, std::abs(batch_loss.sq_err)));

  const auto fp = full.params();
  ASSERT_EQ(shard_param_grads.size(), fp.size());
  for (std::size_t j = 0; j < fp.size(); ++j)
    for (std::size_t i = 0; i < fp[j]->grad.numel(); ++i) {
      const double want = fp[j]->grad[i];
      const double got = shard_param_grads[j][i];
      EXPECT_NEAR(got, want, 1e-5 * std::max(1.0, std::abs(want)))
          << "param " << j << " grad " << i;
    }
}

TEST(ShardedBackward, DenseRecomposesFromShards) {
  Rng rng{950};
  Dense full{6, 4, rng};
  Rng data_rng{951};
  const Tensor x = random_tensor({8, 6}, data_rng);
  const Tensor y = random_tensor({8, 4}, data_rng);
  check_shard_backward_recomposition(full, full, x, y);
}

TEST(ShardedBackward, Conv2DRecomposesFromShards) {
  Rng rng{952};
  Sequential full;
  full.emplace<Conv2D>(2, 3, 3, 1, 1, rng);
  full.emplace<Flatten>();
  full.emplace<Dense>(3 * 6 * 5, 4, rng);
  Rng data_rng{953};
  const Tensor x = random_tensor({8, 2, 6, 5}, data_rng);
  const Tensor y = random_tensor({8, 4}, data_rng);
  check_shard_backward_recomposition(full, full, x, y);
}

TEST(ShardedBackward, LstmRecomposesFromShards) {
  Rng rng{954};
  Lstm full{3, 4, 5, rng};
  Rng data_rng{955};
  const Tensor x = random_tensor({6, 5, 3}, data_rng);
  const Tensor y = random_tensor({6, 4}, data_rng);
  check_shard_backward_recomposition(full, full, x, y);
}

// Replicated-then-synced weights must be bitwise copies, and the ghost
// BatchNorm protocol must replay the serial running-stat update exactly.
TEST(ReplicaTeam, ReplicatesSyncsAndAbsorbsShardStats) {
  const ModelInputShape in{2, 6, 8};
  Rng rng{956};
  const auto primary = make_model(ModelKind::kMobileNetLite, in, 3, rng);
  ReplicaTeam team{*primary, 2};
  ASSERT_FALSE(team.empty());
  ASSERT_EQ(team.size(), 2u);

  const auto params = primary->params();
  // Perturb the primary, sync, and expect bitwise equality on every replica.
  for (Param* p : params)
    for (auto& v : p->value.flat()) v += 0.125f;
  team.sync_weights(params);
  for (std::size_t r = 0; r < team.size(); ++r) {
    const auto& rp = team.replica_params(r);
    ASSERT_EQ(rp.size(), params.size());
    for (std::size_t j = 0; j < rp.size(); ++j)
      for (std::size_t i = 0; i < rp[j]->value.numel(); ++i)
        ASSERT_EQ(rp[j]->value[i], params[j]->value[i]);
  }

  // Ghost BN: forwarding a batch on a replica and absorbing its shard stats
  // into the primary must equal forwarding the same batch on a serial copy.
  Rng ref_rng{956};
  const auto reference = make_model(ModelKind::kMobileNetLite, in, 3, ref_rng);
  Rng data_rng{957};
  const Tensor batch = random_tensor({4, in.channels, in.height, in.width}, data_rng);
  (void)reference->forward(batch, true);

  Rng primary_rng{956};
  const auto ghost_primary = make_model(ModelKind::kMobileNetLite, in, 3, primary_rng);
  ReplicaTeam fresh_team{*ghost_primary, 1};
  ASSERT_FALSE(fresh_team.empty());
  (void)fresh_team.replica(0).forward(batch, true);
  std::vector<float> stats(fresh_team.replica(0).shard_stats_size());
  ASSERT_FALSE(stats.empty());
  fresh_team.replica(0).export_shard_stats(stats);
  ghost_primary->absorb_shard_stats(stats);

  const auto ref_state = reference->state();
  const auto ghost_state = ghost_primary->state();
  ASSERT_EQ(ref_state.size(), ghost_state.size());
  for (std::size_t t = 0; t < ref_state.size(); ++t)
    for (std::size_t i = 0; i < ref_state[t]->numel(); ++i)
      ASSERT_EQ((*ghost_state[t])[i], (*ref_state[t])[i])
          << "running stat " << t << "[" << i << "]";
}

// The fused sweep must leave weights bitwise identical to step-then-zero
// and clear every gradient — at both SIMD backends, which must also agree
// with each other bitwise (the fused Adam kernel is SIMD-routed).
TEST(Optimizer, FusedStepMatchesStepThenZeroGradBitwise) {
  std::vector<float> weights_by_backend[2];
  int bi = 0;
  for (const util::SimdBackend backend :
       {util::SimdBackend::kVector, util::SimdBackend::kScalar}) {
    SimdBackendGuard simd_guard{backend};
    Rng rng_a{958};
    Dense fused{7, 5, rng_a};
    Rng rng_b{958};
    Dense unfused{7, 5, rng_b};
    Adam opt_fused{fused.params(), 0.01, 0.9, 0.999, 1e-8, 0.1};
    Adam opt_unfused{unfused.params(), 0.01, 0.9, 0.999, 1e-8, 0.1};

    Rng data_rng{959};
    for (int it = 0; it < 5; ++it) {
      const Tensor x = random_tensor({4, 7}, data_rng);
      const Tensor y = random_tensor({4, 5}, data_rng);
      const auto loss_a = mse_loss(fused.forward(x, true), y);
      fused.backward(loss_a.grad);
      const auto loss_b = mse_loss(unfused.forward(x, true), y);
      unfused.backward(loss_b.grad);
      opt_fused.step_and_zero_grad();
      opt_unfused.step();
      opt_unfused.zero_grad();
    }

    const auto fp = fused.params();
    const auto up = unfused.params();
    for (std::size_t j = 0; j < fp.size(); ++j) {
      for (std::size_t i = 0; i < fp[j]->value.numel(); ++i)
        ASSERT_EQ(fp[j]->value[i], up[j]->value[i])
            << "weight " << j << "[" << i << "]";
      for (std::size_t i = 0; i < fp[j]->grad.numel(); ++i)
        ASSERT_EQ(fp[j]->grad[i], 0.0f) << "stale grad " << j << "[" << i << "]";
      for (float v : fp[j]->value.flat()) weights_by_backend[bi].push_back(v);
    }
    ++bi;
  }
  ASSERT_EQ(weights_by_backend[0].size(), weights_by_backend[1].size());
  for (std::size_t i = 0; i < weights_by_backend[0].size(); ++i)
    ASSERT_EQ(weights_by_backend[0][i], weights_by_backend[1][i])
        << "Adam vector/scalar divergence at weight " << i;
}

}  // namespace
}  // namespace sb::ml
