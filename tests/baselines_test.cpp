#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dnn_lstm.hpp"
#include "baselines/failsafe_kf.hpp"
#include "baselines/lti_invariant.hpp"
#include "test_helpers.hpp"

namespace sb::baselines {
namespace {

core::Flight spoofed_flight(double duration = 30.0, std::uint64_t seed = 40) {
  core::FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, duration);
  s.wind.gust_stddev = 0.3;
  attacks::GpsSpoofConfig g;
  g.start = 8.0;
  g.end = duration - 4.0;
  g.drag_rate = 1.2;
  s.gps_spoof = g;
  s.seed = seed;
  return test::lab().fly(s);
}

TEST(Failsafe, BenignPositionDriftGrowsQuadratically) {
  // The IMU-only dead-reckoning accumulates drift: longer flights have
  // disproportionately larger peak position deviation.
  FailsafeImuDetector det{{}};
  const auto short_flight = test::hover_flight(10.0, 41);
  const auto long_flight = test::hover_flight(30.0, 41);
  const auto r_short = det.analyze(short_flight);
  const auto r_long = det.analyze(long_flight);
  EXPECT_GT(r_long.peak_pos_dev, r_short.peak_pos_dev);
}

TEST(Failsafe, CalibrateSetsThresholdAboveBenign) {
  FailsafeImuDetector det{{}};
  std::vector<FailsafeImuDetector::Result> benign;
  for (std::uint64_t s = 50; s < 54; ++s)
    benign.push_back(det.analyze(test::hover_flight(15.0, s)));
  det.calibrate(benign);
  for (const auto& r : benign) EXPECT_LE(r.peak_running_mean, det.threshold() + 1e-9);
  // With the calibrated threshold the same flights raise no alarm.
  for (std::uint64_t s = 50; s < 54; ++s)
    EXPECT_FALSE(det.analyze(test::hover_flight(15.0, s)).attacked);
}

TEST(Failsafe, UncalibratedNeverAlerts) {
  FailsafeImuDetector det{{}};
  EXPECT_FALSE(det.analyze(spoofed_flight()).attacked);
}

TEST(Failsafe, BenignVelocityErrorIsDriftDominated) {
  // The Failsafe baseline's core weakness (and the reason the paper's
  // acoustic detectors beat it): its dead-reckoned velocity drifts even on
  // benign flights, so the benign error floor is already of the same order
  // as a realistic spoof signature (~1 m/s).  Verify the drift floor is
  // substantial and grows with flight duration.
  FailsafeImuDetector det{{}};
  const auto short_flight = det.analyze(test::hover_flight(10.0, 42));
  const auto long_flight = det.analyze(test::hover_flight(30.0, 42));
  EXPECT_GT(long_flight.peak_running_mean, 0.5);
  EXPECT_GT(long_flight.peak_running_mean, short_flight.peak_running_mean);
}

TEST(Lti, FitsBenignDynamics) {
  LtiInvariantDetector det{{}, LtiOutput::kVx};
  std::vector<core::Flight> benign;
  benign.push_back(test::line_flight(15.0, 60));
  benign.push_back(test::line_flight(15.0, 61));
  det.fit(benign);
  ASSERT_TRUE(det.fitted());
  // One-step-ahead prediction residuals on a held-out benign flight must be
  // far smaller than the signal scale.
  const auto held_out = test::line_flight(15.0, 62);
  const auto r = det.analyze(held_out);
  EXPECT_LT(r.peak_running_mean, 1.0);
}

TEST(Lti, CoefficientsAreFinite) {
  for (auto out : {LtiOutput::kYaw, LtiOutput::kVx, LtiOutput::kVy}) {
    LtiInvariantDetector det{{}, out};
    std::vector<core::Flight> benign{test::hover_flight(12.0, 63)};
    det.fit(benign);
    for (double c : det.coefficients()) EXPECT_TRUE(std::isfinite(c));
  }
}

TEST(Lti, UnfittedAnalyzeIsInert) {
  LtiInvariantDetector det{{}, LtiOutput::kVx};
  const auto r = det.analyze(test::hover_flight(8.0, 64));
  EXPECT_FALSE(r.attacked);
  EXPECT_DOUBLE_EQ(r.peak_running_mean, 0.0);
}

TEST(Lti, StableAutoregressionOnHover) {
  LtiInvariantDetector det{{}, LtiOutput::kYaw};
  std::vector<core::Flight> benign{test::hover_flight(15.0, 65),
                                   test::hover_flight(15.0, 66)};
  det.fit(benign);
  const auto r = det.analyze(test::hover_flight(15.0, 67));
  EXPECT_LT(r.peak_running_mean, 0.5);
}

TEST(Lti, NamesAreStable) {
  EXPECT_EQ(to_string(LtiOutput::kYaw), "yaw");
  EXPECT_EQ(to_string(LtiOutput::kVx), "vx");
  EXPECT_EQ(to_string(LtiOutput::kVy), "vy");
}

TEST(DnnLstm, TrainsAndPredictsOnBenignTelemetry) {
  DnnLstmConfig cfg;
  cfg.train.epochs = 3;
  DnnLstmDetector det{cfg};
  std::vector<core::Flight> benign{test::hover_flight(15.0, 70),
                                   test::line_flight(15.0, 71)};
  det.fit(benign);
  const auto r = det.analyze(test::hover_flight(15.0, 72));
  EXPECT_GT(r.peak_running_mean, 0.0);
  EXPECT_TRUE(std::isfinite(r.peak_running_mean));
}

TEST(DnnLstm, CalibrationUsesLowPercentile) {
  // The DNN baseline thresholds INSIDE the benign range (the paper reports
  // FPR 0.73), so at least some benign flights must alert post-calibration.
  DnnLstmConfig cfg;
  cfg.train.epochs = 3;
  cfg.threshold_percentile = 40.0;
  DnnLstmDetector det{cfg};
  std::vector<core::Flight> benign;
  for (std::uint64_t s = 80; s < 84; ++s)
    benign.push_back(test::hover_flight(12.0, s));
  det.fit(benign);
  std::vector<DnnLstmDetector::Result> results;
  for (const auto& f : benign) results.push_back(det.analyze(f));
  det.calibrate(results);
  int alerts = 0;
  for (const auto& f : benign)
    if (det.analyze(f).attacked) ++alerts;
  EXPECT_GE(alerts, 1);
}

TEST(DnnLstm, UnfittedAnalyzeIsInert) {
  DnnLstmDetector det{{}};
  EXPECT_FALSE(det.analyze(test::hover_flight(8.0, 90)).attacked);
}

}  // namespace
}  // namespace sb::baselines
