#include <gtest/gtest.h>

#include <cmath>

#include "acoustics/localization.hpp"
#include "acoustics/propagation.hpp"
#include "dsp/tdoa.hpp"
#include "util/rng.hpp"

namespace sb::dsp {
namespace {

std::vector<double> noise_burst(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> s(n);
  for (auto& x : s) x = rng.normal();
  return s;
}

std::vector<double> shifted(const std::vector<double>& s, int delay) {
  std::vector<double> out(s.size(), 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto j = static_cast<std::ptrdiff_t>(i) - delay;
    if (j >= 0 && j < static_cast<std::ptrdiff_t>(s.size()))
      out[i] = s[static_cast<std::size_t>(j)];
  }
  return out;
}

TEST(Tdoa, RecoversIntegerDelay) {
  const auto a = noise_burst(4096, 1);
  for (int delay : {-20, -7, 0, 3, 15}) {
    const auto b = shifted(a, delay);
    const auto est = estimate_tdoa(a, b);
    EXPECT_NEAR(est.delay_samples, delay, 0.25) << "delay " << delay;
  }
}

TEST(Tdoa, WorksWithoutPhat) {
  const auto a = noise_burst(4096, 2);
  const auto b = shifted(a, 9);
  GccConfig cfg;
  cfg.phat = false;
  EXPECT_NEAR(estimate_tdoa(a, b, cfg).delay_samples, 9.0, 0.25);
}

TEST(Tdoa, RobustToIndependentNoise) {
  const auto clean = noise_burst(8192, 3);
  auto a = clean;
  auto b = shifted(clean, 11);
  Rng rng{4};
  for (auto& x : a) x += rng.normal(0.0, 0.5);
  for (auto& x : b) x += rng.normal(0.0, 0.5);
  EXPECT_NEAR(estimate_tdoa(a, b).delay_samples, 11.0, 0.5);
}

TEST(Tdoa, RespectsSearchRange) {
  const auto a = noise_burst(4096, 5);
  const auto b = shifted(a, 25);
  GccConfig cfg;
  cfg.max_delay_samples = 10.0;  // true delay outside the physical bound
  const auto est = estimate_tdoa(a, b, cfg);
  EXPECT_LE(std::abs(est.delay_samples), 10.5);
}

TEST(Tdoa, EmptyInputIsSafe) {
  std::vector<double> empty;
  const auto est = estimate_tdoa(empty, empty);
  EXPECT_DOUBLE_EQ(est.delay_samples, 0.0);
}

TEST(Tdoa, CrossCorrelationPeaksAtLag) {
  const auto a = noise_burst(1024, 6);
  const auto b = shifted(a, 5);
  const auto xc = cross_correlation(a, b, 16);
  std::size_t peak = 0;
  for (std::size_t i = 0; i < xc.size(); ++i)
    if (xc[i] > xc[peak]) peak = i;
  EXPECT_EQ(static_cast<int>(peak) - 16, 5);
}

TEST(Tdoa, SubSampleInterpolation) {
  // A fractional delay synthesized by linear interpolation between taps.
  const auto a = noise_burst(8192, 7);
  std::vector<double> b(a.size(), 0.0);
  const double frac_delay = 6.4;
  for (std::size_t i = 8; i < a.size(); ++i) {
    const double j = static_cast<double>(i) - frac_delay;
    const auto j0 = static_cast<std::size_t>(j);
    const double f = j - static_cast<double>(j0);
    b[i] = a[j0] * (1.0 - f) + a[j0 + 1] * f;
  }
  GccConfig cfg;
  cfg.phat = false;  // interpolation acts as a low-pass; plain GCC is apt
  EXPECT_NEAR(estimate_tdoa(a, b, cfg).delay_samples, frac_delay, 0.35);
}

}  // namespace
}  // namespace sb::dsp

namespace sb::acoustics {
namespace {

TEST(Localization, LocatesSingleRotorSource) {
  // One rotor radiates broadband noise; the array should localize it near
  // its true position.
  const sim::QuadrotorParams quad;
  const auto geom = sensors::compute_geometry({}, quad);
  const double fs = 16000.0;

  Rng rng{11};
  std::array<std::vector<double>, sim::kNumRotors> rotors;
  for (auto& r : rotors) r.assign(4096 + 64, 0.0);
  for (auto& x : rotors[0]) x = rng.normal();  // front-left rotor only

  Rng ambient{12};
  const auto audio = mix_to_mics(rotors, 64, geom, fs, 0.0005, ambient);
  const auto result = localize_source(audio, geom);
  ASSERT_TRUE(result.has_value());
  const Vec3 truth{quad.arm_lx, -quad.arm_ly, 0.0};
  // The tiny array aperture (~0.1 m at 16 kHz -> ~2 cm path resolution per
  // sample) limits absolute accuracy; what matters for rotor attribution is
  // landing in the correct quadrant at rotor-arm distance.
  EXPECT_LT((result->position - truth).norm(), 0.25)
      << "estimated (" << result->position.x << ", " << result->position.y << ")";
  EXPECT_GT(result->position.x, 0.0);
  EXPECT_LT(result->position.y, 0.0);
}

TEST(Localization, DistinguishesOppositeRotors) {
  const sim::QuadrotorParams quad;
  const auto geom = sensors::compute_geometry({}, quad);
  const double fs = 16000.0;

  auto locate_rotor = [&](int rotor) {
    Rng rng{20 + static_cast<std::uint64_t>(rotor)};
    std::array<std::vector<double>, sim::kNumRotors> rotors;
    for (auto& r : rotors) r.assign(4096 + 64, 0.0);
    for (auto& x : rotors[static_cast<std::size_t>(rotor)]) x = rng.normal();
    Rng ambient{30 + static_cast<std::uint64_t>(rotor)};
    const auto audio = mix_to_mics(rotors, 64, geom, fs, 0.0005, ambient);
    return localize_source(audio, geom)->position;
  };

  const Vec3 p0 = locate_rotor(0);  // (+lx, -ly)
  const Vec3 p2 = locate_rotor(2);  // (-lx, +ly)
  EXPECT_GT(p0.x, p2.x);
  EXPECT_LT(p0.y, p2.y);
}

TEST(Localization, EmptyAudioReturnsNothing) {
  const auto geom = sensors::compute_geometry({}, sim::QuadrotorParams{});
  MultiChannelAudio empty;
  EXPECT_FALSE(localize_source(empty, geom).has_value());
}

TEST(Localization, PairDelaysAreBoundedByGeometry) {
  const sim::QuadrotorParams quad;
  const auto geom = sensors::compute_geometry({}, quad);
  Rng rng{40};
  std::array<std::vector<double>, sim::kNumRotors> rotors;
  for (auto& r : rotors) r.assign(2048 + 64, 0.0);
  for (auto& x : rotors[1]) x = rng.normal();
  Rng ambient{41};
  const auto audio = mix_to_mics(rotors, 64, geom, 16000.0, 0.0005, ambient);
  const auto delays = measure_pair_delays(audio);
  // Mic spacing ~0.1 m -> at most ~5 samples of TDoA at 16 kHz.
  for (double d : delays) EXPECT_LE(std::abs(d), 6.0);
}

}  // namespace
}  // namespace sb::acoustics
