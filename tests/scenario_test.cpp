#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/dataset.hpp"
#include "scenario/airframe.hpp"
#include "scenario/environment.hpp"
#include "scenario/scenario_set.hpp"
#include "util/checksum.hpp"
#include "util/thread_pool.hpp"

namespace sb::scenario {
namespace {

struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t n) { util::ThreadPool::set_threads(n); }
  ~ThreadCountGuard() { util::ThreadPool::set_threads(0); }
};

TEST(AirframeCatalog, CoversQuadHexaOcto) {
  const auto catalog = airframe_catalog();
  ASSERT_GE(catalog.size(), 3u);
  const AirframeSpec* x500 = find_airframe("x500");
  const AirframeSpec* hexa = find_airframe("hexa-700");
  const AirframeSpec* octo = find_airframe("octo-900");
  ASSERT_NE(x500, nullptr);
  ASSERT_NE(hexa, nullptr);
  ASSERT_NE(octo, nullptr);
  EXPECT_TRUE(x500->legacy_x500);
  EXPECT_EQ(hexa->num_rotors, 6);
  EXPECT_EQ(octo->num_rotors, 8);
  EXPECT_EQ(find_airframe("no-such-frame"), nullptr);
}

TEST(AirframeCatalog, RingLayoutsAreBalanced) {
  // The generalized mixer assumes sum(x) = sum(y) = sum(x*y) = sum(s) =
  // sum(s*x) = sum(s*y) = 0; the catalog must only emit layouts that
  // satisfy it.
  for (const auto& spec : airframe_catalog()) {
    const auto p = spec.quad_params();
    double sx = 0, sy = 0, sxy = 0, ss = 0, ssx = 0, ssy = 0;
    for (int r = 0; r < p.num_rotors; ++r) {
      const Vec3 pos = p.rotor_position(r);
      const double s = p.spin(r);
      sx += pos.x;
      sy += pos.y;
      sxy += pos.x * pos.y;
      ss += s;
      ssx += s * pos.x;
      ssy += s * pos.y;
    }
    EXPECT_NEAR(sx, 0.0, 1e-9) << spec.name;
    EXPECT_NEAR(sy, 0.0, 1e-9) << spec.name;
    EXPECT_NEAR(sxy, 0.0, 1e-9) << spec.name;
    EXPECT_NEAR(ss, 0.0, 1e-9) << spec.name;
    EXPECT_NEAR(ssx, 0.0, 1e-9) << spec.name;
    EXPECT_NEAR(ssy, 0.0, 1e-9) << spec.name;
  }
}

TEST(AirframeCatalog, DetuneFingerprintsAreDistinctPerRotor) {
  const AirframeSpec* hexa = find_airframe("hexa-700");
  ASSERT_NE(hexa, nullptr);
  const auto detunes = hexa->rotor_detunes();
  ASSERT_EQ(detunes.size(), 6u);
  for (std::size_t a = 0; a < detunes.size(); ++a) {
    EXPECT_LE(std::abs(detunes[a]), hexa->detune_spread);
    for (std::size_t b = a + 1; b < detunes.size(); ++b)
      EXPECT_NE(detunes[a], detunes[b]);
  }
  // Legacy X500 keeps the synthesizer's measured table (empty vector).
  EXPECT_TRUE(find_airframe("x500")->rotor_detunes().empty());
}

core::FlightScenario golden_scenario() {
  core::FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 10.0);
  s.wind.mean = {1.0, 0.5, 0.0};
  s.wind.gust_stddev = 0.4;
  s.seed = 42;
  return s;
}

std::uint32_t flight_crc(const core::Flight& flight) {
  const auto& log = flight.log;
  std::uint32_t crc = 0;
  auto add = [&](double v) { crc = util::crc32(&v, sizeof v, crc); };
  for (std::size_t i = 0; i < log.t.size(); ++i) {
    add(log.t[i]);
    add(log.true_pos[i].x);
    add(log.true_pos[i].y);
    add(log.true_pos[i].z);
    for (int r = 0; r < log.num_rotors; ++r)
      add(log.rotor_omega[i][static_cast<std::size_t>(r)]);
  }
  return crc;
}

TEST(AirframeCatalog, X500IsBitwiseIdenticalToDefaultLab) {
  // The reference quad through the catalog path must reproduce the plain
  // FlightLab flight exactly — same truth timeline, same audio seed.
  const AirframeSpec* x500 = find_airframe("x500");
  ASSERT_NE(x500, nullptr);
  core::FlightLab default_lab;
  core::FlightLab catalog_lab{x500->lab_config()};
  const auto a = default_lab.fly(golden_scenario());
  const auto b = catalog_lab.fly(golden_scenario());
  EXPECT_EQ(a.audio_seed, b.audio_seed);
  EXPECT_EQ(flight_crc(a), flight_crc(b));
}

TEST(AirframeCatalog, AllAirframesHoverWithinQuadErrorBound) {
  // Every catalog frame — with its rescaled controller gains — holds a noisy
  // closed-loop hover to the same position-error bound as the quad.
  for (const auto& spec : airframe_catalog()) {
    core::FlightLab lab{spec.lab_config()};
    core::FlightScenario s;
    s.mission = sim::Mission::hover({0, 0, -10}, 12.0);
    s.wind.mean = {0.8, 0.4, 0.0};
    s.wind.gust_stddev = 0.3;
    s.seed = 7;
    const auto flight = lab.fly(s);
    double max_err = 0.0;
    for (std::size_t i = 0; i < flight.log.t.size(); ++i)
      if (flight.log.t[i] > 5.0)
        max_err = std::max(max_err,
                           (flight.log.true_pos[i] - Vec3{0, 0, -10}).norm());
    // The default quad sits at ~0.72 m under this wind/noise draw; every
    // frame must stay in the same class.
    EXPECT_LT(max_err, 1.0) << spec.name;
  }
}

TEST(EnvironmentCatalog, ProfilesCoverCalmGustyAndGroundEffect) {
  const auto catalog = environment_catalog();
  ASSERT_GE(catalog.size(), 3u);
  ASSERT_NE(find_environment("meadow-calm"), nullptr);
  const EnvironmentProfile* ridge = find_environment("gusty-ridge");
  const EnvironmentProfile* pad = find_environment("low-hover-pad");
  ASSERT_NE(ridge, nullptr);
  ASSERT_NE(pad, nullptr);
  EXPECT_GT(ridge->gust_stddev, find_environment("meadow-calm")->gust_stddev);
  EXPECT_GT(pad->ground_reflect, 0.0);
  EXPECT_EQ(find_environment("vacuum"), nullptr);

  core::FlightLab::Config cfg = pad->apply({});
  EXPECT_DOUBLE_EQ(cfg.synth.ground_reflect, pad->ground_reflect);
  EXPECT_DOUBLE_EQ(cfg.synth.mic_array.ambient_noise, pad->ambient_noise);
}

ScenarioSetConfig tiny_config() {
  ScenarioSetConfig cfg;
  cfg.airframes = airframe_catalog();
  cfg.environments = environment_catalog();
  cfg.environments.resize(2);
  cfg.train_repeats = 1;
  cfg.calib_repeats = 1;
  cfg.eval_benign_repeats = 1;
  cfg.eval_attack_repeats = 1;
  cfg.train_duration = 6.0;
  cfg.eval_duration = 20.0;
  cfg.seed = 3;
  return cfg;
}

TEST(ScenarioSet, EnumeratesTheFullMatrixDeterministically) {
  const ScenarioSet set{tiny_config()};
  // Per (airframe, env): 1 train + 1 calib + 1 eval benign + 2 attacks.
  const std::size_t per_pair = 5;
  ASSERT_EQ(set.cells().size(), 3u * 2u * per_pair);

  const ScenarioSet again{tiny_config()};
  for (std::size_t i = 0; i < set.cells().size(); ++i) {
    EXPECT_EQ(set.cells()[i].seed, again.cells()[i].seed);
    EXPECT_EQ(set.cells()[i].flight_id,
              static_cast<std::int64_t>(i));  // unique, enumeration order
  }
}

TEST(ScenarioSet, FlyIsBitIdenticalAcrossThreadCounts) {
  ScenarioSetConfig cfg = tiny_config();
  cfg.environments.resize(1);
  cfg.train_duration = 4.0;
  const ScenarioSet set{cfg};
  const auto batch = set.flight_disjoint_split().train;
  ASSERT_GE(batch.size(), 2u);

  std::vector<std::uint32_t> crc1, crc4;
  {
    ThreadCountGuard guard{1};
    for (const auto& f : set.fly(batch)) crc1.push_back(flight_crc(f));
  }
  {
    ThreadCountGuard guard{4};
    for (const auto& f : set.fly(batch)) crc4.push_back(flight_crc(f));
  }
  EXPECT_EQ(crc1, crc4);
}

TEST(ScenarioSet, FlightDisjointSplitPartitionsRoles) {
  const ScenarioSet set{tiny_config()};
  const TrainEvalSplit split = set.flight_disjoint_split();
  EXPECT_EQ(split.mode, core::SplitMode::kFlightDisjoint);
  EXPECT_EQ(split.train.size() + split.calibration.size() + split.eval.size(),
            set.cells().size());
  // Disjoint by construction: the guard accepts the annotated corpus.
  const auto train_ids = ScenarioSet::cell_ids(split.train, split.mode);
  EXPECT_NO_THROW(enforce_split(train_ids, split));
}

TEST(ScenarioSet, AirframeDisjointSplitHoldsOutTheAirframe) {
  const ScenarioSet set{tiny_config()};
  const TrainEvalSplit split = set.airframe_disjoint_split(1);
  EXPECT_EQ(split.mode, core::SplitMode::kAirframeDisjoint);
  ASSERT_FALSE(split.train.empty());
  ASSERT_FALSE(split.eval.empty());
  for (const auto& cell : split.train) EXPECT_NE(cell.airframe, 1);
  for (const auto& cell : split.calibration) EXPECT_NE(cell.airframe, 1);
  for (const auto& cell : split.eval) EXPECT_EQ(cell.airframe, 1);
  const auto train_ids = ScenarioSet::cell_ids(split.train, split.mode);
  EXPECT_NO_THROW(enforce_split(train_ids, split));
}

TEST(ScenarioSet, LeakySplitIsRejected) {
  const ScenarioSet set{tiny_config()};
  // Flight-disjoint: sneak one eval flight's windows into the train corpus.
  TrainEvalSplit split = set.flight_disjoint_split();
  auto train_ids = ScenarioSet::cell_ids(split.train, split.mode);
  train_ids.push_back(split.eval.front().flight_id);
  EXPECT_THROW(enforce_split(train_ids, split), std::invalid_argument);

  // Airframe-disjoint: training on any flight of the held-out airframe —
  // even one that is not itself evaluated — is leakage.
  TrainEvalSplit loao = set.airframe_disjoint_split(2);
  auto loao_ids = ScenarioSet::cell_ids(loao.train, loao.mode);
  loao_ids.push_back(2);
  EXPECT_THROW(enforce_split(loao_ids, loao), std::invalid_argument);
}

TEST(DatasetGuard, BuilderRecordsProvenancePerWindow) {
  // The dataset layer records the annotated flight id for every window it
  // appends, so the guard sees real per-window provenance.
  core::FlightLab lab;
  core::DatasetConfig cfg;
  cfg.stride = 0.5;
  core::DatasetBuilder builder{cfg, lab};
  core::FlightScenario s;
  s.mission = sim::Mission::hover({0, 0, -10}, 5.0);
  s.seed = 11;
  const auto flight = lab.fly(s);
  builder.add_flight(flight, 77);
  ASSERT_GT(builder.size(), 0u);
  const auto ids = builder.window_flight_ids();
  ASSERT_EQ(ids.size(), builder.size());
  for (std::int64_t id : ids) EXPECT_EQ(id, 77);

  // The un-annotated overload records kNoFlightId, which the guard ignores.
  builder.add_flight(flight);
  EXPECT_EQ(builder.window_flight_ids().back(), core::kNoFlightId);

  const std::int64_t eval_ids[] = {77};
  EXPECT_THROW(core::enforce_disjoint_split(builder.window_flight_ids(), eval_ids,
                                            core::SplitMode::kFlightDisjoint),
               std::invalid_argument);
  const std::int64_t clean_ids[] = {78};
  EXPECT_NO_THROW(core::enforce_disjoint_split(builder.window_flight_ids(), clean_ids,
                                               core::SplitMode::kFlightDisjoint));
  // kNone never throws, whatever the overlap.
  EXPECT_NO_THROW(core::enforce_disjoint_split(builder.window_flight_ids(), eval_ids,
                                               core::SplitMode::kNone));
}

}  // namespace
}  // namespace sb::scenario
