#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

namespace sb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{9};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, NormalMoments) {
  Rng rng{11};
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng{12};
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.06);
  EXPECT_NEAR(s.stddev(), 2.0, 0.06);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
  Rng parent1{5};
  Rng child1 = parent1.split();
  const double v1 = child1.uniform();

  Rng parent2{5};
  Rng child2 = parent2.split();
  parent2.uniform();  // extra parent draws must not affect the child
  EXPECT_EQ(child2.uniform(), v1);
}

TEST(Rng, PermutationIsValid) {
  Rng rng{13};
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng{14};
  const auto p = rng.permutation(50);
  int in_place = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i] == i) ++in_place;
  EXPECT_LT(in_place, 10);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Stats, SampleStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(sample_stddev(xs), 2.138, 1e-3);
}

TEST(Stats, EmptyInputsAreSafe) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(median(xs), 0.0);
  EXPECT_EQ(max_of(xs), 0.0);
}

TEST(Stats, MedianAndPercentiles) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{2, 3, 4};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, Mse) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{2, 2, 5};
  EXPECT_NEAR(sb::mse(a, b), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
}

TEST(Stats, RemoveOutliers) {
  std::vector<double> xs(100, 1.0);
  xs.push_back(1000.0);
  const auto kept = remove_outliers(xs, 3.0);
  EXPECT_EQ(kept.size(), 100u);
  EXPECT_DOUBLE_EQ(max_of(kept), 1.0);
}

TEST(Stats, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs{1.5, 2.5, -3.0, 0.25, 10.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(0.12345, 2), "0.12");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vec3, CrossProduct) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(Mat3, IdentityActsTrivially) {
  const Mat3 i = Mat3::identity();
  const Vec3 v{1, -2, 3};
  const Vec3 r = i * v;
  EXPECT_DOUBLE_EQ(r.x, v.x);
  EXPECT_DOUBLE_EQ(r.y, v.y);
  EXPECT_DOUBLE_EQ(r.z, v.z);
}

TEST(Mat3, RotationIsOrthonormal) {
  const Mat3 r = rotation_from_euler(0.3, -0.2, 1.1);
  const Mat3 rrt = r * r.transposed();
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_NEAR(rrt(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Mat3, YawRotatesXTowardY) {
  const Mat3 r = rotation_from_euler(0, 0, M_PI / 2);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Mat3, PitchRotatesBodyZ) {
  // Nose-up pitch tilts the body -z (thrust) axis backward in NED.
  const Mat3 r = rotation_from_euler(0, 0.1, 0);
  const Vec3 thrust = r * Vec3{0, 0, -1};
  EXPECT_LT(thrust.x, 0.0);
}

}  // namespace
}  // namespace sb
