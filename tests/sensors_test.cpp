#include <gtest/gtest.h>

#include <cmath>

#include "sensors/gps.hpp"
#include "sensors/imu.hpp"
#include "sensors/mic_array.hpp"
#include "util/stats.hpp"

namespace sb::sensors {
namespace {

sim::QuadState hover_state() {
  sim::QuadState s;
  s.pos = {0, 0, -10};
  s.accel = {};  // hovering: zero linear acceleration
  return s;
}

TEST(Imu, NoiselessConfigReproducesTruth) {
  Imu imu{{0, 0, 0, 0}, Rng{1}};
  const auto state = hover_state();
  const Vec3 sf{0, 0, -sim::kGravity};
  const auto s = imu.sample(1.0, state, sf);
  EXPECT_NEAR(s.specific_force.z, -sim::kGravity, 1e-12);
  EXPECT_NEAR(s.gyro.norm(), 0.0, 1e-12);
  EXPECT_NEAR(s.accel_ned.norm(), 0.0, 1e-9);
}

TEST(Imu, NoiseMatchesConfiguredStd) {
  ImuConfig cfg;
  cfg.accel_noise = 0.2;
  cfg.gyro_noise = 0.01;
  cfg.accel_bias = 0.0;
  cfg.gyro_bias = 0.0;
  Imu imu{cfg, Rng{2}};
  const auto state = hover_state();
  const Vec3 sf{0, 0, -sim::kGravity};
  RunningStats ax, gx;
  for (int i = 0; i < 20000; ++i) {
    const auto s = imu.sample(i * 0.005, state, sf);
    ax.add(s.specific_force.x);
    gx.add(s.gyro.x);
  }
  EXPECT_NEAR(ax.stddev(), 0.2, 0.01);
  EXPECT_NEAR(gx.stddev(), 0.01, 0.001);
}

TEST(Imu, BiasIsConstantPerInstance) {
  ImuConfig cfg;
  cfg.accel_noise = 0.0;
  cfg.gyro_noise = 0.0;
  cfg.accel_bias = 0.5;
  Imu imu{cfg, Rng{3}};
  const auto state = hover_state();
  const Vec3 sf{0, 0, -sim::kGravity};
  const auto s1 = imu.sample(0.0, state, sf);
  const auto s2 = imu.sample(1.0, state, sf);
  EXPECT_DOUBLE_EQ(s1.specific_force.x, s2.specific_force.x);
  EXPECT_NE(s1.specific_force.x, 0.0);
}

TEST(Imu, AccelNedRoundTrip) {
  // to_accel_ned must invert the body-frame projection for any attitude.
  const Vec3 euler{0.2, -0.3, 1.0};
  const Vec3 accel_ned{1.0, -2.0, 0.5};
  const Mat3 r = rotation_from_euler(euler.x, euler.y, euler.z);
  const Vec3 sf = r.transposed() * (accel_ned - Vec3{0, 0, sim::kGravity});
  const Vec3 back = Imu::to_accel_ned(sf, euler);
  EXPECT_NEAR(back.x, accel_ned.x, 1e-9);
  EXPECT_NEAR(back.y, accel_ned.y, 1e-9);
  EXPECT_NEAR(back.z, accel_ned.z, 1e-9);
}

TEST(Gps, NoiselessReproducesTruth) {
  Gps gps{{0, 0, 0}, Rng{4}};
  sim::QuadState state;
  state.pos = {3, -4, -12};
  state.vel = {1, 0, -0.5};
  const auto s = gps.sample(2.0, state);
  EXPECT_DOUBLE_EQ(s.pos.x, 3.0);
  EXPECT_DOUBLE_EQ(s.vel.z, -0.5);
  EXPECT_DOUBLE_EQ(s.t, 2.0);
}

TEST(Gps, NoiseLevels) {
  GpsConfig cfg;
  Gps gps{cfg, Rng{5}};
  sim::QuadState state;
  RunningStats px, pz, vx;
  for (int i = 0; i < 20000; ++i) {
    const auto s = gps.sample(i * 0.2, state);
    px.add(s.pos.x);
    pz.add(s.pos.z);
    vx.add(s.vel.x);
  }
  EXPECT_NEAR(px.stddev(), cfg.pos_noise_h, 0.05);
  EXPECT_NEAR(pz.stddev(), cfg.pos_noise_v, 0.05);
  EXPECT_NEAR(vx.stddev(), cfg.vel_noise, 0.01);
}

TEST(MicArray, GeometryHasFourDistinctMics) {
  const auto g = compute_geometry({}, sim::QuadrotorParams{});
  for (int a = 0; a < kNumMics; ++a)
    for (int b = a + 1; b < kNumMics; ++b)
      EXPECT_GT((g.mic_pos[static_cast<std::size_t>(a)] -
                 g.mic_pos[static_cast<std::size_t>(b)])
                    .norm(),
                0.01);
}

TEST(MicArray, OffCenterMountBreaksSymmetry) {
  // The off-centre mount means at least one mic hears rotor 0 much louder
  // than rotor 2 (the diagonal opposite).
  const auto g = compute_geometry({}, sim::QuadrotorParams{});
  double max_ratio = 0.0;
  for (int m = 0; m < kNumMics; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    max_ratio = std::max(max_ratio, g.gain[mi][0] / g.gain[mi][2]);
  }
  EXPECT_GT(max_ratio, 1.3);
}

TEST(MicArray, GainsDecreaseWithDistance) {
  const auto g = compute_geometry({}, sim::QuadrotorParams{});
  for (int m = 0; m < kNumMics; ++m)
    for (int r = 0; r < sim::kNumRotors; ++r) {
      const auto mi = static_cast<std::size_t>(m);
      const auto ri = static_cast<std::size_t>(r);
      EXPECT_GT(g.gain[mi][ri], 0.0);
      EXPECT_LT(g.gain[mi][ri], 1.0);
    }
}

TEST(MicArray, DelaysMatchDistances) {
  const auto g = compute_geometry({}, sim::QuadrotorParams{});
  for (int m = 0; m < kNumMics; ++m)
    for (int r = 0; r < sim::kNumRotors; ++r) {
      const auto mi = static_cast<std::size_t>(m);
      const auto ri = static_cast<std::size_t>(r);
      EXPECT_GT(g.delay_s[mi][ri], 0.0);
      EXPECT_LT(g.delay_s[mi][ri], 0.01);  // sub-frame delays on a small frame
    }
}

TEST(MicArray, DirectionVectorsAreUnit) {
  const auto g = compute_geometry({}, sim::QuadrotorParams{});
  for (int m = 0; m < kNumMics; ++m)
    for (int r = 0; r < sim::kNumRotors; ++r)
      EXPECT_NEAR(g.dir[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)].norm(),
                  1.0, 1e-9);
}

TEST(MicArray, TdoaDiffersAcrossMics) {
  // The TDoA principle requires the same rotor to arrive at different times
  // at different mics.
  const auto g = compute_geometry({}, sim::QuadrotorParams{});
  double spread = 0.0;
  for (int r = 0; r < sim::kNumRotors; ++r) {
    double lo = 1e9, hi = 0.0;
    for (int m = 0; m < kNumMics; ++m) {
      const double d = g.delay_s[static_cast<std::size_t>(m)][static_cast<std::size_t>(r)];
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    spread = std::max(spread, hi - lo);
  }
  EXPECT_GT(spread, 1e-5);  // > 10 us somewhere
}

}  // namespace
}  // namespace sb::sensors
