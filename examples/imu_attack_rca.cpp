// IMU-attack RCA walk-through: train the acoustic model on benign flights,
// calibrate the KS-stage detector, then diagnose a flight whose gyroscope
// was spoofed mid-air with a Side-Swing bias injection.
//
// Uses the fast MLP model so the whole example runs in about a minute;
// the benches use the full MobileNetLite configuration.
//
//   $ ./imu_attack_rca
#include <cstdio>
#include <vector>

#include "core/imu_rca.hpp"
#include "core/rca_engine.hpp"
#include "core/sensory_mapper.hpp"
#include "obs/log.hpp"

using namespace sb;

int main() {
  core::FlightLab lab;

  // --- Offline phase: train the sensory mapping on benign flights. ---
  obs::logf(obs::LogLevel::kInfo, "setup", "[1/4] flying the benign training campaign...");
  const auto scenarios = lab.training_scenarios(/*per_family=*/2, /*duration=*/18.0);
  std::vector<core::Flight> train_flights;
  for (const auto& s : scenarios) train_flights.push_back(lab.fly(s));

  core::SensoryMapperConfig cfg;
  cfg.model = ml::ModelKind::kMlp;  // fast; use kMobileNetLite for quality
  cfg.train.epochs = 8;
  core::SensoryMapper mapper{cfg};
  obs::logf(obs::LogLevel::kInfo, "setup", "[2/4] training %s on %zu flights...",
            ml::to_string(cfg.model).c_str(), train_flights.size());
  const auto fit = mapper.fit(lab, train_flights);
  obs::logf(obs::LogLevel::kInfo, "setup", "train MSE %.3f, val MSE %.3f",
            fit.final_train_mse, fit.final_val_mse);

  // --- Calibrate the benign residual distribution. ---
  obs::logf(obs::LogLevel::kInfo, "setup", "[3/4] calibrating the benign residual distribution...");
  core::ImuRcaDetector detector{core::ImuRcaConfig{}};
  std::vector<core::WindowResiduals> calibration;
  for (std::uint64_t seed = 900; seed < 906; ++seed) {
    core::FlightScenario b;
    b.mission = sim::Mission::hover({0, 0, -10}, 25.0);
    b.wind.gust_stddev = 0.4;
    b.seed = seed;
    const auto f = lab.fly(b);
    const auto w = core::ImuRcaDetector::residuals(f, mapper.predict_flight(lab, f));
    calibration.insert(calibration.end(), w.begin(), w.end());
  }
  detector.calibrate(calibration);
  obs::logf(obs::LogLevel::kInfo, "setup", "benign z-residuals: mean %+.3f, std %.3f",
            detector.benign_fit(2).mean, detector.benign_fit(2).stddev);

  // --- The incident: a hover mission that went wobbly at t=12 s. ---
  obs::logf(obs::LogLevel::kInfo, "run", "[4/4] post-incident analysis of the attacked flight...");
  core::FlightScenario incident;
  incident.mission = sim::Mission::hover({0, 0, -10}, 30.0);
  incident.wind.gust_stddev = 0.4;
  attacks::ImuAttackConfig attack;
  attack.type = attacks::ImuAttackType::kSideSwing;
  attack.start = 12.0;
  attack.end = 22.0;
  incident.imu_attack = attack;
  incident.seed = 999;
  const auto flight = lab.fly(incident);

  const auto preds = mapper.predict_flight(lab, flight);
  const auto windows = core::ImuRcaDetector::residuals(flight, preds);
  const auto result = detector.analyze(windows);

  std::printf("\n=== RCA verdict ===\n");
  std::printf("IMU compromised : %s\n", result.attacked ? "YES" : "no");
  if (result.attacked) {
    std::printf("first flagged at: %.1f s (attack started at %.1f s -> %.1f s delay)\n",
                result.detect_time, attack.start, result.detect_time - attack.start);
    std::printf("windows flagged : %zu / %zu (max OOD score %.1f vs threshold %.1f)\n",
                result.windows_flagged, result.windows_tested, result.max_score,
                detector.score_threshold());
    std::printf(
        "\nThe acoustic side-channel says the vehicle flew normally while the\n"
        "IMU reported something else: the IMU is the root cause. A GPS check\n"
        "would now run with the audio-only Kalman filter (§III-C2, version 1).\n");
  }
  return 0;
}
