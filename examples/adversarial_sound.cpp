// Adversarial-sound walk-through (§IV-D): what happens when the attacker
// goes after the microphones themselves?
//
//  1. Ultrasonic injection (>20 kHz): filtered out by construction.
//  2. Record-and-replay from a second UAV at 0.5 m: heavily attenuated.
//  3. Idealized phase-synchronized cancellation of the aerodynamic band:
//     shifts predictions, but mostly toward false positives, not misses.
//
//   $ ./adversarial_sound
#include <cmath>
#include <cstdio>
#include <vector>

#include "attacks/sound_attack.hpp"
#include "core/sensory_mapper.hpp"
#include "dsp/biquad.hpp"
#include "obs/log.hpp"
#include "util/stats.hpp"

using namespace sb;

int main() {
  core::FlightLab lab;

  obs::logf(obs::LogLevel::kInfo, "setup", "training a small acoustic model...");
  const auto scenarios = lab.training_scenarios(2, 18.0);
  std::vector<core::Flight> train_flights;
  for (const auto& s : scenarios) train_flights.push_back(lab.fly(s));
  core::SensoryMapperConfig cfg;
  cfg.model = ml::ModelKind::kMlp;
  cfg.train.epochs = 8;
  core::SensoryMapper mapper{cfg};
  mapper.fit(lab, train_flights);

  core::FlightScenario hover;
  hover.mission = sim::Mission::hover({0, 0, -10}, 25.0);
  hover.wind.gust_stddev = 0.3;
  hover.seed = 321;
  const auto flight = lab.fly(hover);
  const auto windows = mapper.synthesize_windows(lab, flight);
  const auto clean = mapper.predict_windows(windows);

  auto mean_delta = [&](const core::PredictionHooks& hooks) {
    const auto attacked = mapper.predict_windows(windows, hooks);
    std::vector<double> d;
    for (std::size_t i = 0; i < clean.size(); ++i)
      d.push_back((clean[i].accel - attacked[i].accel).norm());
    return mean(d);
  };

  // 1. Ultrasonic injection: the 6 kHz pipeline low-pass kills a 21 kHz
  //    carrier before it ever reaches the model.  (We inject an aliased
  //    in-band image to show even that barely registers.)
  std::printf("\n--- 1. ultrasonic IMU-injection carrier ---\n");
  {
    core::PredictionHooks hooks;
    hooks.audio_transform = [](acoustics::MultiChannelAudio& audio) {
      // What a 21 kHz carrier folds to at 16 kHz sampling: 5 kHz image,
      // but any real carrier energy above 6 kHz is removed by the pipeline
      // low-pass; emulate a tiny residual leak.
      for (auto& ch : audio.channels)
        for (std::size_t i = 0; i < ch.size(); ++i)
          ch[i] += 0.002 * std::sin(2.0 * M_PI * 5000.0 * static_cast<double>(i) / 16000.0);
    };
    std::printf("prediction shift: %.4f m/s^2 (innately immune: the pipeline\n"
                "low-passes at 6 kHz, below any ultrasonic carrier)\n",
                mean_delta(hooks));
  }

  // 2. Record-and-replay at 0.5 m.
  std::printf("\n--- 2. record-and-replay from a second UAV at 0.5 m ---\n");
  {
    const auto synth = lab.synthesizer(flight);
    const auto rec = synth.synthesize(flight.log, 3.0, 3.6);
    std::vector<double> recording = rec.channels[0];
    double peak = 1e-9;
    for (double x : recording) peak = std::max(peak, std::abs(x));
    for (double& x : recording) x = x / peak * 0.8;
    const auto geometry = synth.geometry();
    core::PredictionHooks hooks;
    hooks.audio_transform = [&](acoustics::MultiChannelAudio& audio) {
      attacks::ReplayAttackConfig rcfg;
      rcfg.source_pos = {0, 0.5, 0};
      attacks::apply_replay_attack(audio, recording, rcfg, geometry);
    };
    std::printf("prediction shift: %.4f m/s^2 (sound arrives at ~46%% of\n"
                "on-frame intensity and without phase lock: negligible)\n",
                mean_delta(hooks));
  }

  // 3. Idealized phase-synchronized cancellation on all four channels.
  std::printf("\n--- 3. idealized phase-synced aerodynamic cancellation ---\n");
  {
    core::PredictionHooks hooks;
    hooks.audio_transform = [](acoustics::MultiChannelAudio& audio) {
      attacks::PhaseSyncSoundAttackConfig acfg;
      acfg.amplitude_factor = 0.0;
      acfg.channels = {0, 1, 2, 3};
      attacks::apply_phase_sync_attack(audio, acfg);
    };
    std::printf("prediction shift: %.4f m/s^2 (a worst-case attacker CAN move\n"
                "the predictions — but mostly into implausible regions, which\n"
                "raises false positives rather than hiding attacks; Tab. III)\n",
                mean_delta(hooks));
  }
  std::printf("\nSee bench_tab3_sound_attack for the full TPR/FPR sweep.\n");
  return 0;
}
