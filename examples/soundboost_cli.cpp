// soundboost_cli — drive the library end to end from the command line.
//
//   soundboost_cli fly      [--mission hover|line|square|fig8] [--seed N]
//                           [--duration S] [--attack none|imu|gps|actuator]
//                           [--out PREFIX]       exports truth/imu/gps CSVs
//   soundboost_cli record   [--seed N] [--t0 S] [--t1 S] [--out FILE.wav]
//                           writes the 4-channel microphone recording
//   soundboost_cli train    [--model mlp|mobilenet|resnet|ode] [--flights N]
//                           [--epochs N] [--out MODEL.bin]
//   soundboost_cli analyze  --model MODEL.bin [--attack none|imu|gps]
//                           [--seed N]           runs the two-stage RCA
//
// Everything is deterministic in --seed.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/gps_rca.hpp"
#include "core/imu_rca.hpp"
#include "core/rca_engine.hpp"
#include "core/sensory_mapper.hpp"
#include "io/flight_csv.hpp"
#include "io/wav.hpp"
#include "obs/log.hpp"

using namespace sb;

namespace {

struct Args {
  std::string command;
  std::string mission = "hover";
  std::string attack = "none";
  std::string model = "mlp";
  std::string out;
  std::string model_path;
  std::uint64_t seed = 1;
  double duration = 40.0;
  double t0 = 5.0, t1 = 6.0;
  int flights = 12;
  int epochs = 8;
};

bool parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--mission") args.mission = value;
    else if (key == "--attack") args.attack = value;
    else if (key == "--model") args.model = value;
    else if (key == "--out") args.out = value;
    else if (key == "--seed") args.seed = std::stoull(value);
    else if (key == "--duration") args.duration = std::stod(value);
    else if (key == "--t0") args.t0 = std::stod(value);
    else if (key == "--t1") args.t1 = std::stod(value);
    else if (key == "--flights") args.flights = std::stoi(value);
    else if (key == "--epochs") args.epochs = std::stoi(value);
    else {
      std::fprintf(stderr, "unknown option: %s\n", key.c_str());
      return false;
    }
  }
  if (args.command == "analyze" && args.model_path.empty()) args.model_path = args.out;
  return true;
}

sim::Mission make_mission(const std::string& name, double duration) {
  if (name == "line") return sim::Mission::line({0, 0, -10}, {20, 5, -11}, 2.5, duration);
  if (name == "square") return sim::Mission::square({0, 0, 0}, 14, 11, 2.2, duration);
  if (name == "fig8") return sim::Mission::figure_eight({0, 0, -12}, 9, 2.6, duration);
  return sim::Mission::hover({0, 0, -10}, duration);
}

core::FlightScenario make_scenario(const Args& args) {
  core::FlightScenario s;
  s.mission = make_mission(args.mission, args.duration);
  s.wind.gust_stddev = 0.4;
  s.seed = args.seed;
  if (args.attack == "imu") {
    attacks::ImuAttackConfig a;
    a.start = args.duration * 0.35;
    a.end = a.start + 10.0;
    s.imu_attack = a;
  } else if (args.attack == "gps") {
    attacks::GpsSpoofConfig g;
    g.start = args.duration * 0.3;
    g.end = args.duration * 0.8;
    g.drag_rate = 1.1;
    s.gps_spoof = g;
  } else if (args.attack == "actuator") {
    attacks::ActuatorDosConfig a;
    a.start = args.duration * 0.35;
    a.end = a.start + 8.0;
    s.actuator_attack = a;
  }
  return s;
}

core::SensoryMapperConfig mapper_config(const Args& args) {
  core::SensoryMapperConfig cfg;
  if (args.model == "mobilenet") cfg.model = ml::ModelKind::kMobileNetLite;
  else if (args.model == "resnet") cfg.model = ml::ModelKind::kResNetLite;
  else if (args.model == "ode") cfg.model = ml::ModelKind::kNeuralOde;
  else cfg.model = ml::ModelKind::kMlp;
  cfg.train.epochs = static_cast<std::size_t>(args.epochs);
  return cfg;
}

int cmd_fly(const Args& args) {
  core::FlightLab lab;
  const auto flight = lab.fly(make_scenario(args));
  std::printf("flew '%s' (%.0f s, seed %llu, attack: %s)\n",
              flight.log.mission_name.c_str(), flight.log.duration(),
              static_cast<unsigned long long>(args.seed), args.attack.c_str());
  const std::string prefix = args.out.empty() ? "flight" : args.out;
  const bool ok = io::write_truth_csv(prefix + "_truth.csv", flight.log) &&
                  io::write_imu_csv(prefix + "_imu.csv", flight.log) &&
                  io::write_gps_csv(prefix + "_gps.csv", flight.log);
  std::printf("%s %s_{truth,imu,gps}.csv\n", ok ? "wrote" : "FAILED writing",
              prefix.c_str());
  return ok ? 0 : 1;
}

int cmd_record(const Args& args) {
  core::FlightLab lab;
  const auto flight = lab.fly(make_scenario(args));
  const auto synth = lab.synthesizer(flight);
  const auto audio = synth.synthesize(flight.log, args.t0, args.t1);
  const std::string path = args.out.empty() ? "recording.wav" : args.out;
  if (!io::write_wav(path, audio, 2.0)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu samples x %d mics @ %.0f Hz (t=%.1f..%.1f s)\n",
              path.c_str(), audio.num_samples(), sensors::kNumMics,
              audio.sample_rate, args.t0, args.t1);
  return 0;
}

int cmd_train(const Args& args) {
  core::FlightLab lab;
  const int per_family = std::max(1, args.flights / 6);
  obs::logf(obs::LogLevel::kInfo, "setup", "flying %d training flights...", per_family * 6);
  std::vector<core::Flight> flights;
  for (const auto& s : lab.training_scenarios(per_family, 20.0))
    flights.push_back(lab.fly(s));

  core::SensoryMapper mapper{mapper_config(args)};
  obs::logf(obs::LogLevel::kInfo, "setup", "training %s (%d epochs)...",
            ml::to_string(mapper.config().model).c_str(), args.epochs);
  const auto result = mapper.fit(lab, flights);
  std::printf("train MSE %.4f, val MSE %.4f\n", result.final_train_mse,
              result.final_val_mse);
  const std::string path = args.out.empty() ? "soundboost_model.bin" : args.out;
  if (!mapper.save(path)) {
    std::fprintf(stderr, "failed to save %s\n", path.c_str());
    return 1;
  }
  std::printf("saved model to %s\n", path.c_str());
  return 0;
}

int cmd_analyze(const Args& args) {
  core::FlightLab lab;
  core::SensoryMapper mapper{mapper_config(args)};
  const std::string path = args.out.empty() ? "soundboost_model.bin" : args.out;
  if (!mapper.load(path)) {
    std::fprintf(stderr,
                 "cannot load model from %s (train one with `soundboost_cli "
                 "train --model %s --out %s`)\n",
                 path.c_str(), args.model.c_str(), path.c_str());
    return 1;
  }

  obs::logf(obs::LogLevel::kInfo, "setup", "calibrating detectors on benign flights...");
  core::ImuRcaDetector imu_det{core::ImuRcaConfig{}};
  core::GpsRcaDetector gps_det{core::GpsRcaConfig{}};
  std::vector<core::WindowResiduals> imu_cal;
  std::vector<core::GpsRcaDetector::Result> audio_cal, fused_cal;
  for (std::uint64_t s = 7000; s < 7006; ++s) {
    core::FlightScenario b;
    b.mission = s % 2 ? make_mission("line", 30.0) : make_mission("hover", 30.0);
    b.wind.gust_stddev = 0.4;
    b.seed = s;
    const auto f = lab.fly(b);
    const auto preds = mapper.predict_flight(lab, f);
    const auto w = core::ImuRcaDetector::residuals(f, preds);
    imu_cal.insert(imu_cal.end(), w.begin(), w.end());
    audio_cal.push_back(gps_det.analyze(f, preds, core::GpsDetectorMode::kAudioOnly));
    fused_cal.push_back(gps_det.analyze(f, preds, core::GpsDetectorMode::kAudioImu));
  }
  imu_det.calibrate(imu_cal);
  gps_det.calibrate(audio_cal, core::GpsDetectorMode::kAudioOnly);
  gps_det.calibrate(fused_cal, core::GpsDetectorMode::kAudioImu);

  obs::logf(obs::LogLevel::kInfo, "run", "flying the incident (attack: %s)...", args.attack.c_str());
  const auto flight = lab.fly(make_scenario(args));
  core::RcaEngine engine{mapper, imu_det, gps_det};
  const auto report = engine.analyze(lab, flight);

  std::printf("\n=== RCA verdict ===\n");
  std::printf("IMU : %s", report.imu_attacked ? "ATTACKED" : "clean");
  if (report.imu_attacked) std::printf(" (flagged at %.1f s)", report.imu_detect_time);
  std::printf("\nGPS : %s", report.gps_attacked ? "ATTACKED" : "clean");
  if (report.gps_attacked) std::printf(" (flagged at %.1f s)", report.gps_detect_time);
  std::printf("\nKF  : %s\n",
              report.gps_mode_used == core::GpsDetectorMode::kAudioOnly
                  ? "audio only (IMU untrusted)"
                  : "audio + IMU (IMU trusted)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: soundboost_cli <fly|record|train|analyze> [options]\n"
                 "see the header comment of examples/soundboost_cli.cpp\n");
    return 2;
  }
  if (args.command == "fly") return cmd_fly(args);
  if (args.command == "record") return cmd_record(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "analyze") return cmd_analyze(args);
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return 2;
}
