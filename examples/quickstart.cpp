// Quickstart: simulate a UAV flight, record its acoustic side-channel with
// the onboard microphone array, and inspect the acoustic signature — the
// front half of the SoundBoost pipeline, with no model training involved.
//
//   $ ./quickstart
#include <cstdio>

#include "core/flight_lab.hpp"
#include "core/signature.hpp"
#include "dsp/fft.hpp"
#include "obs/log.hpp"

using namespace sb;

int main() {
  // 1. A flight lab bundles the quadrotor, sensors, controller and the
  //    acoustic synthesizer.  Default config = Holybro-X500-class vehicle.
  core::FlightLab lab;

  // 2. Fly a 20 s square patrol in light wind.  Everything is deterministic
  //    in the scenario seed.
  core::FlightScenario scenario;
  scenario.mission = sim::Mission::square({0, 0, 0}, 12.0, 10.0, 2.0, 20.0);
  scenario.wind.gust_stddev = 0.4;
  scenario.seed = 7;
  const core::Flight flight = lab.fly(scenario);
  obs::logf(obs::LogLevel::kInfo, "run", "flew '%s' for %.0f s: %zu IMU samples, %zu GPS fixes",
            flight.log.mission_name.c_str(), flight.log.duration(),
            flight.log.imu.size(), flight.log.gps.size());

  // 3. Record 0.5 s of the 4-channel microphone audio mid-flight.
  const auto synth = lab.synthesizer(flight);
  const auto audio = synth.synthesize(flight.log, 8.0, 8.5);
  obs::logf(obs::LogLevel::kInfo, "run", "recorded %zu samples x %d mics at %.0f Hz",
            audio.num_samples(), sensors::kNumMics, audio.sample_rate);

  // 4. Where is the acoustic energy?  The three rotor-noise groups the
  //    paper identifies (Fig. 2a) show up as spectral peaks.
  std::vector<double> segment(audio.channels[0].begin(), audio.channels[0].end());
  const auto mags = dsp::magnitude_spectrum(segment);
  const std::size_t n = dsp::next_pow2(segment.size());
  auto peak_in = [&](double lo, double hi) {
    double best = 0, best_hz = 0;
    for (std::size_t k = 0; k < mags.size(); ++k) {
      const double f = dsp::bin_frequency(k, n, audio.sample_rate);
      if (f >= lo && f < hi && mags[k] > best) {
        best = mags[k];
        best_hz = f;
      }
    }
    return best_hz;
  };
  std::printf("blade passing peak : %6.0f Hz\n", peak_in(100, 600));
  std::printf("mechanical peak    : %6.0f Hz\n", peak_in(2000, 3000));
  std::printf("aerodynamic peak   : %6.0f Hz\n", peak_in(4500, 6000));

  // 5. Turn the window into the model-ready acoustic signature:
  //    [channels x frames x bands] of banded log magnitudes, low-passed at
  //    6 kHz so ultrasonic IMU-injection attacks can never reach the model.
  core::SignatureConfig cfg;
  const auto sig = compute_signature(audio, cfg);
  std::printf("signature tensor: [%zu x %zu x %zu x %zu]\n", sig.dim(0), sig.dim(1),
              sig.dim(2), sig.dim(3));
  std::printf(
      "\nNext steps: train a SensoryMapper on benign flights and run the\n"
      "RcaEngine — see examples/imu_attack_rca.cpp and gps_spoofing_rca.cpp.\n");
  return 0;
}
