// GPS-spoofing RCA walk-through: the full two-stage RcaEngine diagnosing a
// stealthy GPS drag-spoof (Sathaye-style human-in-the-loop takeover) that
// pulled a hovering UAV tens of meters off its station.
//
//   $ ./gps_spoofing_rca
#include <cstdio>
#include <vector>

#include "core/gps_rca.hpp"
#include "core/imu_rca.hpp"
#include "core/rca_engine.hpp"
#include "core/sensory_mapper.hpp"
#include "obs/log.hpp"

using namespace sb;

int main() {
  core::FlightLab lab;

  obs::logf(obs::LogLevel::kInfo, "setup", "[1/4] training the acoustic model on benign flights...");
  const auto scenarios = lab.training_scenarios(2, 18.0);
  std::vector<core::Flight> train_flights;
  for (const auto& s : scenarios) train_flights.push_back(lab.fly(s));
  core::SensoryMapperConfig cfg;
  cfg.model = ml::ModelKind::kMlp;
  cfg.train.epochs = 8;
  core::SensoryMapper mapper{cfg};
  mapper.fit(lab, train_flights);

  obs::logf(obs::LogLevel::kInfo, "setup", "[2/4] calibrating both detector stages on benign flights...");
  // Stricter IMU-stage settings for mixed-mission deployments: regime
  // changes (hover -> en-route) shift the model's residual bias, and the
  // IMU verdict here means "untrusted", not necessarily "attacked".
  core::ImuRcaConfig imu_cfg;
  imu_cfg.score_percentile = 99.5;
  imu_cfg.score_margin = 1.6;
  imu_cfg.consecutive_required = 5;
  core::ImuRcaDetector imu_det{imu_cfg};
  core::GpsRcaDetector gps_det{core::GpsRcaConfig{}};
  {
    std::vector<core::WindowResiduals> imu_cal;
    std::vector<core::GpsRcaDetector::Result> audio_cal, fused_cal;
    for (std::uint64_t seed = 910; seed < 918; ++seed) {
      core::FlightScenario b;
      // Calibration must cover the mission variety the detector will see:
      // hover, en-route and turning flight all have different benign
      // residual envelopes.
      switch (seed % 4) {
        case 0: b.mission = sim::Mission::hover({0, 0, -10}, 30.0); break;
        case 1:
          b.mission = sim::Mission::line({0, 0, -10}, {15, 5, -11}, 2.5, 30.0);
          break;
        case 2:
          b.mission = sim::Mission::figure_eight({0, 2, -11}, 8, 2.2, 30.0);
          break;
        default:
          b.mission = sim::Mission::square({0, 0, 0}, 12, 10, 2.0, 30.0);
          break;
      }
      b.wind.gust_stddev = 0.4;
      b.seed = seed;
      const auto f = lab.fly(b);
      const auto preds = mapper.predict_flight(lab, f);
      const auto w = core::ImuRcaDetector::residuals(f, preds);
      imu_cal.insert(imu_cal.end(), w.begin(), w.end());
      audio_cal.push_back(gps_det.analyze(f, preds, core::GpsDetectorMode::kAudioOnly));
      fused_cal.push_back(gps_det.analyze(f, preds, core::GpsDetectorMode::kAudioImu));
    }
    imu_det.calibrate(imu_cal);
    gps_det.calibrate(audio_cal, core::GpsDetectorMode::kAudioOnly);
    gps_det.calibrate(fused_cal, core::GpsDetectorMode::kAudioImu);
  }
  obs::logf(obs::LogLevel::kInfo, "setup",
            "velocity-error thresholds: audio-only %.2f, audio+IMU %.2f m/s",
            gps_det.threshold(core::GpsDetectorMode::kAudioOnly),
            gps_det.threshold(core::GpsDetectorMode::kAudioImu));

  obs::logf(obs::LogLevel::kInfo, "run", "[3/4] the incident: hover mission, spoofer active 15-45 s...");
  core::FlightScenario incident;
  incident.mission = sim::Mission::hover({0, 0, -12}, 55.0);
  incident.wind.gust_stddev = 0.4;
  attacks::GpsSpoofConfig spoof;
  spoof.start = 15.0;
  spoof.end = 45.0;
  spoof.drag_direction = {1, 0, 0};
  spoof.drag_rate = 1.1;
  incident.gps_spoof = spoof;
  incident.seed = 888;
  const auto flight = lab.fly(incident);
  const Vec3 final_true = flight.log.true_pos[flight.log.true_pos.size() / 2];
  obs::logf(obs::LogLevel::kInfo, "run",
            "mid-flight true position: (%.1f, %.1f, %.1f) — hijacked off "
            "station while the GPS reported all-is-well",
            final_true.x, final_true.y, final_true.z);

  obs::logf(obs::LogLevel::kInfo, "run", "[4/4] post-incident two-stage RCA...");
  core::RcaEngine engine{mapper, imu_det, gps_det};
  const auto report = engine.analyze(lab, flight);

  std::printf("\n=== RCA verdict ===\n");
  std::printf("IMU trusted     : %s\n", report.imu_attacked ? "NO (anomalous)" : "yes");
  std::printf("GPS compromised : %s\n", report.gps_attacked ? "YES" : "no");
  std::printf("KF variant used : %s\n",
              report.gps_mode_used == core::GpsDetectorMode::kAudioImu
                  ? "audio + IMU (IMU trusted)"
                  : "audio only (IMU untrusted)");
  if (report.gps_attacked)
    std::printf("GPS alert at    : %.1f s (spoof started at %.1f s)\n",
                report.gps_detect_time, spoof.start);
  std::printf(
      "\nThe acoustic velocity estimate tracked the real drift; the GPS\n"
      "velocity did not. Root cause: GPS spoofing.\n");
  return 0;
}
